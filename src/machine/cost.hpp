#pragma once
// Cost model replaying communication/computation schedules on a modeled
// machine (any Topology — torus, fat-tree, dragonfly). A *phase* is a set of
// messages that are all in flight concurrently (e.g., the halo exchange of
// one CG iteration, or one step of the 3-step inter-patch exchange). Phase
// time combines
//   * link contention: the most loaded directed link bounds the phase,
//   * injection: the topology decides how a node's outgoing load parallelises
//     (the torus DMA drives 6 directions concurrently; a single-NIC cluster
//     serialises everything on the host uplink); a naive schedule keeps only
//     one message outstanding, serialising the node's entire outgoing volume,
//   * latency: per-hop plus per-message software overhead on the critical
//     path.

#include <cstddef>
#include <vector>

#include "machine/topology.hpp"

namespace machine {

struct Message {
  int src_rank = 0;
  int dst_rank = 0;
  double bytes = 0.0;
};

enum class InjectionSchedule {
  Naive,           ///< one outstanding message per node at a time
  MultiDirection,  ///< keep all injection channels busy (paper Sec. 3.5)
};

struct PhaseCostBreakdown {
  double link_time = 0.0;       ///< most-loaded-link transfer time
  double injection_time = 0.0;  ///< node injection serialisation
  double latency_time = 0.0;    ///< hop latency + software overhead
  double total() const;
};

/// Time for one phase of concurrent messages.
PhaseCostBreakdown phase_cost(const Topology& topo, const std::vector<Message>& phase,
                              Routing routing = Routing::DeterministicXYZ,
                              InjectionSchedule sched = InjectionSchedule::MultiDirection);

/// Compute-side model. `cache_bytes` drives the superlinear strong-scaling
/// effect seen in Table 5: when the per-core working set drops below cache,
/// the effective rate rises towards peak.
struct ComputeSpec {
  double flops_per_sec = 3.4e9;      ///< per-core sustained peak
  double cache_bytes = 8u << 20;     ///< per-core share of cache hierarchy
  double out_of_cache_slowdown = 2.2;///< rate divisor for fully-uncached data
};

/// Time to execute `flops` on one core touching `working_set_bytes`.
double compute_time(const ComputeSpec& spec, double flops, double working_set_bytes);

/// Collective operations (CG's allreduce, the MCI bcast along replica
/// roots): modeled as a binomial tree over the participating ranks, each
/// tree level paying the worst p2p cost among its pairs.
enum class CollectiveKind {
  Allreduce,  ///< reduce + broadcast: two tree traversals
  Bcast,      ///< one traversal
};

/// Time for a collective of `bytes` payload over `participants` ranks.
double collective_cost(const Topology& topo, const std::vector<int>& participants,
                       double bytes, CollectiveKind kind,
                       Routing routing = Routing::Adaptive);

/// A schedule is an alternating sequence of per-rank compute work and
/// communication phases; replay() accumulates modeled wall-clock for one
/// timestep (ranks synchronise at each comm phase, so per-step time is the
/// max compute among ranks plus each phase's cost).
struct StepSchedule {
  /// flops[i], working_set[i] for each participating rank (max is taken).
  std::vector<double> flops;
  std::vector<double> working_set;
  std::vector<std::vector<Message>> phases;
};

struct ReplayResult {
  double compute_time = 0.0;
  double comm_time = 0.0;
  double total() const { return compute_time + comm_time; }
};

ReplayResult replay_step(const Topology& topo, const ComputeSpec& cspec, const StepSchedule& s,
                         Routing routing = Routing::DeterministicXYZ,
                         InjectionSchedule sched = InjectionSchedule::MultiDirection);

}  // namespace machine
