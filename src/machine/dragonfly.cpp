#include "machine/dragonfly.hpp"

#include <stdexcept>

namespace machine {

Dragonfly::Dragonfly(const DragonflySpec& spec) : spec_(spec) {
  if (spec.groups <= 0 || spec.routers_per_group <= 0 || spec.hosts_per_router <= 0 ||
      spec.global_links <= 0 || spec.cores_per_node <= 0)
    throw std::invalid_argument("Dragonfly: non-positive dimension");
}

std::int64_t Dragonfly::host_link_key(int node, bool up) const {
  return static_cast<std::int64_t>(node) * 2 + (up ? 0 : 1);
}

std::int64_t Dragonfly::local_link_key(int group, int from_router, int to_router) const {
  const int R = spec_.routers_per_group;
  const std::int64_t base = static_cast<std::int64_t>(spec_.total_nodes()) * 2;
  return base + (static_cast<std::int64_t>(group) * R + from_router) * R + to_router;
}

std::int64_t Dragonfly::global_link_key(int from_group, int to_group, int idx) const {
  const int R = spec_.routers_per_group;
  const std::int64_t base = static_cast<std::int64_t>(spec_.total_nodes()) * 2 +
                            static_cast<std::int64_t>(spec_.groups) * R * R;
  return base + (static_cast<std::int64_t>(from_group) * spec_.groups + to_group) *
                    spec_.global_links +
         idx;
}

int Dragonfly::hops(int a, int b) const {
  if (a == b) return 0;
  const int ra = router_of_node(a), rb = router_of_node(b);
  if (ra == rb) return 2;  // host up, host down
  const int ga = group_of_node(a), gb = group_of_node(b);
  if (ga == gb) return 3;  // host up, one local link, host down
  // Cross group: hop count of the deterministic route (global link 0) — up
  // to two extra local hops when the endpoints' routers are not the
  // attachment routers of that global link.
  const int att_a = attach_router(ga, gb, 0);
  const int att_b = attach_router(gb, ga, 0);
  return 3 + (local_router_of_node(a) != att_a ? 1 : 0) +
         (local_router_of_node(b) != att_b ? 1 : 0);
}

int Dragonfly::route_ways(int a, int b, Routing routing) const {
  if (routing != Routing::Adaptive) return 1;
  return group_of_node(a) == group_of_node(b) ? 1 : spec_.global_links;
}

void Dragonfly::append_route(int a, int b, Routing routing, int way,
                             std::vector<std::int64_t>& keys) const {
  if (a == b) return;
  const int ga = group_of_node(a), gb = group_of_node(b);
  const int lra = local_router_of_node(a), lrb = local_router_of_node(b);
  keys.push_back(host_link_key(a, /*up=*/true));
  if (ga == gb) {
    if (lra != lrb) keys.push_back(local_link_key(ga, lra, lrb));
  } else {
    // Deterministic: all traffic for a group pair funnels onto global link 0
    // (the contention the model must capture); adaptive enumerates the
    // parallel global links.
    const int idx = routing == Routing::Adaptive ? way : 0;
    const int att_a = attach_router(ga, gb, idx);
    const int att_b = attach_router(gb, ga, idx);
    if (lra != att_a) keys.push_back(local_link_key(ga, lra, att_a));
    keys.push_back(global_link_key(ga, gb, idx));
    if (att_b != lrb) keys.push_back(local_link_key(gb, att_b, lrb));
  }
  keys.push_back(host_link_key(b, /*up=*/false));
}

std::int64_t Dragonfly::injection_key(int a, int /*b*/) const {
  // One NIC per host: every outgoing message shares the host uplink.
  return host_link_key(a, /*up=*/true);
}

}  // namespace machine
