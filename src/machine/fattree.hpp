#pragma once
// Two-level fat-tree (leaf/spine) topology for the machine:: cost model.
//
// `leaves` edge switches each serve `hosts_per_leaf` nodes; every leaf has
// one uplink to each of the `uplinks` spine switches, so leaf-to-leaf
// traffic shares the leaf's uplink trunks — the congestion the model must
// capture. Deterministic routing hash-picks one spine per leaf pair (the
// static-ECMP collision case); adaptive routing spreads each message over
// all `uplinks` parallel paths (perfect ECMP). Hosts have a single NIC, so
// all of a node's outgoing traffic serialises on its host uplink regardless
// of injection schedule — unlike the torus' six DMA directions.
//
// Hop counts: same node 0, same leaf 2 (host-leaf-host), cross leaf 4
// (host-leaf-spine-leaf-host).

#include "machine/topology.hpp"

namespace machine {

struct FatTreeSpec {
  int leaves = 8;
  int hosts_per_leaf = 16;
  int uplinks = 4;  ///< spine switches == parallel uplinks per leaf
  int cores_per_node = 4;

  double link_bandwidth = 1.25e9;  ///< bytes/s (10 GbE-class links)
  double hop_latency = 500e-9;
  double sw_overhead = 1.5e-6;

  int total_nodes() const { return leaves * hosts_per_leaf; }
  int total_cores() const { return total_nodes() * cores_per_node; }
};

class FatTree : public Topology {
public:
  explicit FatTree(const FatTreeSpec& spec);

  const FatTreeSpec& spec() const { return spec_; }
  int leaf_of_node(int node) const { return node / spec_.hosts_per_leaf; }

  /// Directed link keys (stable, disjoint ranges): host<->leaf access links
  /// first, then leaf<->spine trunks.
  std::int64_t host_link_key(int node, bool up) const;
  std::int64_t trunk_link_key(int leaf, int spine, bool up) const;

  // --- Topology -------------------------------------------------------------
  const char* kind() const override { return "fattree"; }
  int total_nodes() const override { return spec_.total_nodes(); }
  int cores_per_node() const override { return spec_.cores_per_node; }
  double link_bandwidth() const override { return spec_.link_bandwidth; }
  double hop_latency() const override { return spec_.hop_latency; }
  double sw_overhead() const override { return spec_.sw_overhead; }
  int hops(int a, int b) const override;
  int route_ways(int a, int b, Routing routing) const override;
  void append_route(int a, int b, Routing routing, int way,
                    std::vector<std::int64_t>& keys) const override;
  std::int64_t injection_key(int a, int b) const override;

private:
  FatTreeSpec spec_;
};

}  // namespace machine
