#pragma once
// Aligned numeric vector used throughout the solvers.
//
// The paper (Sec. 3.5) enforces 16-byte alignment via posix_memalign so the
// SIMD kernels can use aligned loads; we align to 64 bytes (cache line /
// AVX-512 friendly) which subsumes that requirement.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>
#include <cassert>

namespace la {

inline constexpr std::size_t kAlignment = 64;

/// Fixed-alignment heap array of doubles with value semantics.
/// Intentionally minimal: the hot loops operate on raw pointers obtained
/// through data(), so there is no iterator/expression-template machinery.
class Vector {
public:
  Vector() = default;

  explicit Vector(std::size_t n, double fill = 0.0) { resize(n, fill); }

  Vector(const Vector& o) { assign(o.data_, o.size_); }
  Vector(Vector&& o) noexcept { swap(o); }
  Vector& operator=(const Vector& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }
  Vector& operator=(Vector&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  ~Vector() { release(); }

  void resize(std::size_t n, double fill = 0.0) {
    release();
    size_ = n;
    if (n == 0) return;
    // round storage up to a full alignment block; std::aligned_alloc requires
    // size to be a multiple of the alignment.
    const std::size_t bytes = ((n * sizeof(double) + kAlignment - 1) / kAlignment) * kAlignment;
    data_ = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
    if (!data_) throw std::bad_alloc{};
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
  }

  void fill(double v) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double* data() { return data_; }
  const double* data() const { return data_; }

  double& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  double* begin() { return data_; }
  double* end() { return data_ + size_; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

  void swap(Vector& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
  }

private:
  void assign(const double* src, std::size_t n) {
    resize(n);
    if (n) std::memcpy(data_, src, n * sizeof(double));
  }
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace la
