#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace la {

EigResult eig_symmetric(const DenseMatrix& A0, double tol, std::size_t max_sweeps) {
  const std::size_t n = A0.rows();
  if (A0.cols() != n) throw std::invalid_argument("eig_symmetric: not square");

  DenseMatrix A = A0;
  DenseMatrix V = DenseMatrix::identity(n);

  EigResult out;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += A(i, j) * A(i, j);
    off = std::sqrt(2.0 * off);
    out.sweeps = sweep;
    if (off <= tol * std::max(1.0, A.frobenius())) {
      out.converged = true;
      break;
    }

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (A(q, q) - A(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = A(k, p), akq = A(k, q);
          A(k, p) = c * akp - s * akq;
          A(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = A(p, k), aqk = A(q, k);
          A(p, k) = c * apk - s * aqk;
          A(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = V(k, p), vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // sort descending by eigenvalue
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return A(a, a) > A(b, b); });

  out.values.resize(n);
  out.vecs = DenseMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = A(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.vecs(i, k) = V(i, order[k]);
  }
  return out;
}

}  // namespace la
