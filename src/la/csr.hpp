#pragma once
// Compressed-sparse-row matrix. The paper's hot communication-intensive
// routine is a parallel block-sparse matrix-vector multiply (Sec. 3.5); the
// serial compute half of that routine is this matvec, and the block variant
// (BlockCsr) mirrors the per-element dense blocks of an SEM stiffness
// operator.

#include <cstddef>
#include <vector>

#include "la/dense.hpp"
#include "la/vector.hpp"

namespace la {

class CsrMatrix {
public:
  CsrMatrix() = default;

  /// Build from triplets; duplicate (i,j) entries are summed.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<std::size_t> is, std::vector<std::size_t> js,
                                 std::vector<double> vs);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val.size(); }

  void matvec(const double* x, double* y) const;
  Vector matvec(const Vector& x) const;

  /// Diagonal entries (0 where absent) — Jacobi preconditioner input.
  Vector diagonal() const;

  std::vector<std::size_t> rowptr;
  std::vector<std::size_t> colidx;
  std::vector<double> val;

private:
  std::size_t rows_ = 0, cols_ = 0;
};

/// Block-sparse matrix: a CSR-like structure whose entries are dense
/// b x b blocks. Models the elemental structure of SEM operators.
class BlockCsr {
public:
  BlockCsr(std::size_t block_rows, std::size_t block_cols, std::size_t b)
      : rowptr(block_rows + 1, 0), brows_(block_rows), bcols_(block_cols), b_(b) {}

  std::size_t block_rows() const { return brows_; }
  std::size_t block_cols() const { return bcols_; }
  std::size_t block_size() const { return b_; }
  std::size_t rows() const { return brows_ * b_; }
  std::size_t cols() const { return bcols_ * b_; }

  /// Append a block to row i; rows must be appended in increasing order.
  void append_block(std::size_t i, std::size_t j, const DenseMatrix& blk);
  void finish_row(std::size_t i);

  void matvec(const double* x, double* y) const;

  std::vector<std::size_t> rowptr;
  std::vector<std::size_t> colidx;
  std::vector<double> blocks;  // b*b doubles per block, row-major

private:
  std::size_t brows_, bcols_, b_;
  std::size_t cur_row_ = 0;
};

}  // namespace la
