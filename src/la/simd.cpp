// Table-1 kernels. This TU is compiled with -mavx2 -mfma; the scalar
// reference versions are pinned to non-vectorised codegen so that the
// SIMD-vs-scalar ratio measured by bench/table1_simd reflects the same
// comparison the paper makes (hand-SIMDized vs plain code).

#include "la/simd.hpp"

#include <immintrin.h>

namespace la::simd {

Isa detect() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") ? Isa::Avx2
                                                                         : Isa::Scalar;
}

#define NO_AUTOVEC __attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))

NO_AUTOVEC
void vmul_scalar(double* z, const double* x, const double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

NO_AUTOVEC
double dot_xyz_scalar(const double* x, const double* y, const double* z, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i] * z[i];
  return a;
}

NO_AUTOVEC
double dot_xyy_scalar(const double* x, const double* y, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i] * y[i];
  return a;
}

void vmul_avx2(double* z, const double* x, const double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(z + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(z + i + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) z[i] = x[i] * y[i];
}

namespace {
inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}
}  // namespace

double dot_xyz_avx2(const double* x, const double* y, const double* z, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)),
                         _mm256_loadu_pd(z + i), a0);
    a1 = _mm256_fmadd_pd(
        _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)),
        _mm256_loadu_pd(z + i + 4), a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i] * z[i];
  return a;
}

double dot_xyy_avx2(const double* x, const double* y, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 = _mm256_loadu_pd(y + i);
    const __m256d y1 = _mm256_loadu_pd(y + i + 4);
    a0 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), y0), y0, a0);
    a1 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i + 4), y1), y1, a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i] * y[i];
  return a;
}

void vmul(double* z, const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) return vmul_avx2(z, x, y, n);
  vmul_scalar(z, x, y, n);
}

double dot_xyz(const double* x, const double* y, const double* z, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_xyz_avx2(x, y, z, n) : dot_xyz_scalar(x, y, z, n);
}

double dot_xyy(const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_xyy_avx2(x, y, n) : dot_xyy_scalar(x, y, n);
}

namespace {

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4), a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i];
  return a;
}

NO_AUTOVEC
double dot_plain(const double* x, const double* y, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i];
  return a;
}

}  // namespace

double dot(const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_avx2(x, y, n) : dot_plain(x, y, n);
}

void axpy(double a, const double* x, double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) {
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    for (; i < n; ++i) y[i] += a * x[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(const double* x, double a, double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) {
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
    for (; i < n; ++i) y[i] = x[i] + a * y[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + a * y[i];
}

void scale(double a, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

#undef NO_AUTOVEC

}  // namespace la::simd
