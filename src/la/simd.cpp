// Table-1 kernels. This TU is compiled with -mavx2 -mfma; the scalar
// reference versions are pinned to non-vectorised codegen so that the
// SIMD-vs-scalar ratio measured by bench/table1_simd reflects the same
// comparison the paper makes (hand-SIMDized vs plain code).

#include "la/simd.hpp"

#include <cmath>
#include <immintrin.h>

namespace la::simd {

Isa detect() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") ? Isa::Avx2
                                                                         : Isa::Scalar;
}

#define NO_AUTOVEC __attribute__((optimize("no-tree-vectorize", "no-unroll-loops")))

NO_AUTOVEC
void vmul_scalar(double* z, const double* x, const double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

NO_AUTOVEC
double dot_xyz_scalar(const double* x, const double* y, const double* z, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i] * z[i];
  return a;
}

NO_AUTOVEC
double dot_xyy_scalar(const double* x, const double* y, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i] * y[i];
  return a;
}

void vmul_avx2(double* z, const double* x, const double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(z + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(z + i + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) z[i] = x[i] * y[i];
}

namespace {
inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}
}  // namespace

double dot_xyz_avx2(const double* x, const double* y, const double* z, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)),
                         _mm256_loadu_pd(z + i), a0);
    a1 = _mm256_fmadd_pd(
        _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)),
        _mm256_loadu_pd(z + i + 4), a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i] * z[i];
  return a;
}

double dot_xyy_avx2(const double* x, const double* y, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 = _mm256_loadu_pd(y + i);
    const __m256d y1 = _mm256_loadu_pd(y + i + 4);
    a0 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), y0), y0, a0);
    a1 = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i + 4), y1), y1, a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i] * y[i];
  return a;
}

void vmul(double* z, const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) return vmul_avx2(z, x, y, n);
  vmul_scalar(z, x, y, n);
}

double dot_xyz(const double* x, const double* y, const double* z, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_xyz_avx2(x, y, z, n) : dot_xyz_scalar(x, y, z, n);
}

double dot_xyy(const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_xyy_avx2(x, y, n) : dot_xyy_scalar(x, y, n);
}

namespace {

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4), a1);
  }
  double a = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) a += x[i] * y[i];
  return a;
}

NO_AUTOVEC
double dot_plain(const double* x, const double* y, std::size_t n) {
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += x[i] * y[i];
  return a;
}

}  // namespace

double dot(const double* x, const double* y, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? dot_avx2(x, y, n) : dot_plain(x, y, n);
}

void axpy(double a, const double* x, double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) {
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    for (; i < n; ++i) y[i] += a * x[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(const double* x, double a, double* y, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) {
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
    for (; i < n; ++i) y[i] = x[i] + a * y[i];
    return;
  }
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + a * y[i];
}

NO_AUTOVEC
void scale_scalar(double a, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void scale_avx2(double a, double* x, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(x + i + 4, _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4)));
  }
  for (; i < n; ++i) x[i] *= a;
}

void scale(double a, double* x, std::size_t n) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2) return scale_avx2(a, x, n);
  scale_scalar(a, x, n);
}

NO_AUTOVEC
void dpd_pair_forces_scalar(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                            const double* dy, const double* dz, const double* r2,
                            const double* dvx, const double* dvy, const double* dvz,
                            const double* zeta, const double* a, const double* g,
                            const double* sig, double* fx, double* fy, double* fz) {
  for (std::size_t k = 0; k < n; ++k) {
    const double r = std::sqrt(r2[k]);
    const double inv_r = 1.0 / r;
    const double w = 1.0 - r * inv_rc;
    const double rv = (dx[k] * dvx[k] + dy[k] * dvy[k] + dz[k] * dvz[k]) * inv_r;
    const double fmag = a[k] * w - g[k] * w * w * rv + sig[k] * w * zeta[k] * inv_sqrt_dt;
    const double s = fmag * inv_r;
    fx[k] = dx[k] * s;
    fy[k] = dy[k] * s;
    fz[k] = dz[k] * s;
  }
}

namespace {

/// One 4-lane block of the Groot-Warren pair kernel. Both the main loop and
/// the (padded) tail go through this exact instruction sequence, so the
/// value computed for a pair never depends on its position in the batch —
/// load-bearing for bitwise checkpoint/restart, where the same pair can sit
/// at a different batch offset depending on when the Verlet list was built.
inline void dpd_block4(__m256d one, __m256d virc, __m256d visdt, const double* dx,
                       const double* dy, const double* dz, const double* r2,
                       const double* dvx, const double* dvy, const double* dvz,
                       const double* zeta, const double* a, const double* g,
                       const double* sig, double* fx, double* fy, double* fz) {
  const __m256d vdx = _mm256_loadu_pd(dx);
  const __m256d vdy = _mm256_loadu_pd(dy);
  const __m256d vdz = _mm256_loadu_pd(dz);
  const __m256d vr = _mm256_sqrt_pd(_mm256_loadu_pd(r2));
  const __m256d vinv_r = _mm256_div_pd(one, vr);
  const __m256d vw = _mm256_fnmadd_pd(vr, virc, one);  // 1 - r/rc
  const __m256d vrv =
      _mm256_mul_pd(_mm256_fmadd_pd(vdx, _mm256_loadu_pd(dvx),
                                    _mm256_fmadd_pd(vdy, _mm256_loadu_pd(dvy),
                                                    _mm256_mul_pd(vdz, _mm256_loadu_pd(dvz)))),
                    vinv_r);
  // fmag = w * (a - g*w*rv + sig*zeta*inv_sqrt_dt)
  const __m256d vdiss = _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(g), vw), vrv);
  const __m256d vrand =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(sig), _mm256_loadu_pd(zeta)), visdt);
  const __m256d vfmag =
      _mm256_mul_pd(vw, _mm256_add_pd(_mm256_sub_pd(_mm256_loadu_pd(a), vdiss), vrand));
  const __m256d vs = _mm256_mul_pd(vfmag, vinv_r);
  _mm256_storeu_pd(fx, _mm256_mul_pd(vdx, vs));
  _mm256_storeu_pd(fy, _mm256_mul_pd(vdy, vs));
  _mm256_storeu_pd(fz, _mm256_mul_pd(vdz, vs));
}

}  // namespace

void dpd_pair_forces_avx2(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                          const double* dy, const double* dz, const double* r2,
                          const double* dvx, const double* dvy, const double* dvz,
                          const double* zeta,
                          const double* a, const double* g, const double* sig, double* fx,
                          double* fy, double* fz) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d virc = _mm256_set1_pd(inv_rc);
  const __m256d visdt = _mm256_set1_pd(inv_sqrt_dt);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4)
    dpd_block4(one, virc, visdt, dx + k, dy + k, dz + k, r2 + k, dvx + k, dvy + k, dvz + k,
               zeta + k, a + k, g + k, sig + k, fx + k, fy + k, fz + k);
  if (k < n) {
    // tail: pad to a full block (r2 = 1 keeps the padded lanes exception
    // free) and run the identical 4-lane body, then copy out the real lanes
    const std::size_t m = n - k;
    alignas(32) double tdx[4] = {}, tdy[4] = {}, tdz[4] = {}, tr2[4] = {1.0, 1.0, 1.0, 1.0},
                       tdvx[4] = {}, tdvy[4] = {}, tdvz[4] = {}, tzeta[4] = {}, ta[4] = {},
                       tg[4] = {}, tsig[4] = {}, tfx[4], tfy[4], tfz[4];
    for (std::size_t l = 0; l < m; ++l) {
      tdx[l] = dx[k + l];
      tdy[l] = dy[k + l];
      tdz[l] = dz[k + l];
      tr2[l] = r2[k + l];
      tdvx[l] = dvx[k + l];
      tdvy[l] = dvy[k + l];
      tdvz[l] = dvz[k + l];
      tzeta[l] = zeta[k + l];
      ta[l] = a[k + l];
      tg[l] = g[k + l];
      tsig[l] = sig[k + l];
    }
    dpd_block4(one, virc, visdt, tdx, tdy, tdz, tr2, tdvx, tdvy, tdvz, tzeta, ta, tg, tsig, tfx,
               tfy, tfz);
    for (std::size_t l = 0; l < m; ++l) {
      fx[k + l] = tfx[l];
      fy[k + l] = tfy[l];
      fz[k + l] = tfz[l];
    }
  }
}

void dpd_pair_forces(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                     const double* dy, const double* dz, const double* r2, const double* dvx,
                     const double* dvy, const double* dvz, const double* zeta, const double* a,
                     const double* g, const double* sig, double* fx, double* fy, double* fz) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2)
    return dpd_pair_forces_avx2(n, inv_rc, inv_sqrt_dt, dx, dy, dz, r2, dvx, dvy, dvz, zeta, a,
                                g, sig, fx, fy, fz);
  dpd_pair_forces_scalar(n, inv_rc, inv_sqrt_dt, dx, dy, dz, r2, dvx, dvy, dvz, zeta, a, g, sig,
                         fx, fy, fz);
}

// --- batched SEM line kernels ------------------------------------------

NO_AUTOVEC
void lines_apply_scalar(const double* M, std::size_t n1, std::size_t nvec, const double* u,
                        double* y, const double* colscale, double coef) {
  for (std::size_t b = 0; b < n1; ++b) {
    const double* Mb = M + b * n1;
    double* yb = y + b * nvec;
    for (std::size_t v = 0; v < nvec; ++v) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += Mb[m] * u[m * nvec + v];
      yb[v] += coef * (colscale ? colscale[v] : 1.0) * s;
    }
  }
}

void lines_apply_avx2(const double* M, std::size_t n1, std::size_t nvec, const double* u,
                      double* y, const double* colscale, double coef) {
  const __m256d vcoef = _mm256_set1_pd(coef);
  const std::size_t vmain = nvec & ~static_cast<std::size_t>(3);
  const std::size_t rem = nvec - vmain;
  // The tail columns are padded once into a 4-wide block shared by every
  // output row b; padded lanes run the identical fmadd chain (their values
  // are never copied back), so a column's result is bitwise independent of
  // where it sits in the batch.
  alignas(32) double tu[kMaxLineN * 4];
  alignas(32) double tcs[4] = {0.0, 0.0, 0.0, 0.0};
  if (rem) {
    for (std::size_t m = 0; m < n1; ++m)
      for (std::size_t l = 0; l < 4; ++l)
        tu[m * 4 + l] = l < rem ? u[m * nvec + vmain + l] : 0.0;
    for (std::size_t l = 0; l < rem; ++l) tcs[l] = colscale ? colscale[vmain + l] : 1.0;
  }
  for (std::size_t b = 0; b < n1; ++b) {
    const double* Mb = M + b * n1;
    double* yb = y + b * nvec;
    for (std::size_t v = 0; v < vmain; v += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t m = 0; m < n1; ++m)
        acc = _mm256_fmadd_pd(_mm256_set1_pd(Mb[m]), _mm256_loadu_pd(u + m * nvec + v), acc);
      const __m256d cs =
          colscale ? _mm256_mul_pd(vcoef, _mm256_loadu_pd(colscale + v)) : vcoef;
      _mm256_storeu_pd(yb + v, _mm256_fmadd_pd(cs, acc, _mm256_loadu_pd(yb + v)));
    }
    if (rem) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t m = 0; m < n1; ++m)
        acc = _mm256_fmadd_pd(_mm256_set1_pd(Mb[m]), _mm256_load_pd(tu + m * 4), acc);
      const __m256d cs = _mm256_mul_pd(vcoef, _mm256_load_pd(tcs));
      alignas(32) double ty[4] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t l = 0; l < rem; ++l) ty[l] = yb[vmain + l];
      _mm256_store_pd(ty, _mm256_fmadd_pd(cs, acc, _mm256_load_pd(ty)));
      for (std::size_t l = 0; l < rem; ++l) yb[vmain + l] = ty[l];
    }
  }
}

void lines_apply(const double* M, std::size_t n1, std::size_t nvec, const double* u, double* y,
                 const double* colscale, double coef) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2 && n1 <= kMaxLineN)
    return lines_apply_avx2(M, n1, nvec, u, y, colscale, coef);
  lines_apply_scalar(M, n1, nvec, u, y, colscale, coef);
}

NO_AUTOVEC
void lines_apply_t_scalar(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                          double* y, const double* rowscale, double coef) {
  for (std::size_t l = 0; l < nlines; ++l) {
    const double* ul = u + l * n1;
    double* yl = y + l * n1;
    const double c = coef * (rowscale ? rowscale[l] : 1.0);
    for (std::size_t a = 0; a < n1; ++a) {
      double s = 0.0;
      for (std::size_t m = 0; m < n1; ++m) s += ul[m] * MT[m * n1 + a];
      yl[a] += c * s;
    }
  }
}

void lines_apply_t_avx2(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                        double* y, const double* rowscale, double coef) {
  const std::size_t amain = n1 & ~static_cast<std::size_t>(3);
  const std::size_t rem = n1 - amain;
  // padded tail of the transposed matrix, shared by every line
  alignas(32) double tmt[kMaxLineN * 4];
  if (rem)
    for (std::size_t m = 0; m < n1; ++m)
      for (std::size_t l = 0; l < 4; ++l)
        tmt[m * 4 + l] = l < rem ? MT[m * n1 + amain + l] : 0.0;
  for (std::size_t l = 0; l < nlines; ++l) {
    const double* ul = u + l * n1;
    double* yl = y + l * n1;
    const __m256d vc = _mm256_set1_pd(rowscale ? coef * rowscale[l] : coef);
    for (std::size_t a = 0; a < amain; a += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t m = 0; m < n1; ++m)
        acc = _mm256_fmadd_pd(_mm256_set1_pd(ul[m]), _mm256_loadu_pd(MT + m * n1 + a), acc);
      _mm256_storeu_pd(yl + a, _mm256_fmadd_pd(vc, acc, _mm256_loadu_pd(yl + a)));
    }
    if (rem) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t m = 0; m < n1; ++m)
        acc = _mm256_fmadd_pd(_mm256_set1_pd(ul[m]), _mm256_load_pd(tmt + m * 4), acc);
      alignas(32) double ty[4] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t q = 0; q < rem; ++q) ty[q] = yl[amain + q];
      _mm256_store_pd(ty, _mm256_fmadd_pd(vc, acc, _mm256_load_pd(ty)));
      for (std::size_t q = 0; q < rem; ++q) yl[amain + q] = ty[q];
    }
  }
}

void lines_apply_t(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                   double* y, const double* rowscale, double coef) {
  static const Isa isa = detect();
  if (isa == Isa::Avx2 && n1 <= kMaxLineN)
    return lines_apply_t_avx2(MT, n1, nlines, u, y, rowscale, coef);
  lines_apply_t_scalar(MT, n1, nlines, u, y, rowscale, coef);
}

// --- fused CG vector passes --------------------------------------------

NO_AUTOVEC
double axpy_norm2_scalar(double a, const double* x, double* y, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * x[i];
    s += y[i] * y[i];
  }
  return s;
}

double axpy_norm2_avx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d y1 =
        _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4));
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
    s0 = _mm256_fmadd_pd(y0, y0, s0);
    s1 = _mm256_fmadd_pd(y1, y1, s1);
  }
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) {
    y[i] += a * x[i];
    s += y[i] * y[i];
  }
  return s;
}

double axpy_norm2(double a, const double* x, double* y, std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? axpy_norm2_avx2(a, x, y, n) : axpy_norm2_scalar(a, x, y, n);
}

NO_AUTOVEC
double axpy_dot_scalar(double a, const double* x, double* y, const double* u, const double* v,
                       std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * x[i];
    s += u[i] * v[i];
  }
  return s;
}

double axpy_dot_avx2(double a, const double* x, double* y, const double* u, const double* v,
                     std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i,
                     _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(u + i), _mm256_loadu_pd(v + i), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(u + i + 4), _mm256_loadu_pd(v + i + 4), s1);
  }
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) {
    y[i] += a * x[i];
    s += u[i] * v[i];
  }
  return s;
}

double axpy_dot(double a, const double* x, double* y, const double* u, const double* v,
                std::size_t n) {
  static const Isa isa = detect();
  return isa == Isa::Avx2 ? axpy_dot_avx2(a, x, y, u, v, n)
                          : axpy_dot_scalar(a, x, y, u, v, n);
}

#undef NO_AUTOVEC

}  // namespace la::simd
