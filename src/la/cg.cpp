#include "la/cg.hpp"

#include <cmath>

#include "la/simd.hpp"
#include "telemetry/registry.hpp"

namespace la {

Preconditioner identity_preconditioner() {
  return [](const double* r, double* z, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i];
  };
}

Preconditioner jacobi_preconditioner(const Vector& diag) {
  const Vector* d = &diag;
  return [d](const double* r, double* z, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / (*d)[i];
  };
}

CgResult cg_solve(const LinearOperator& A, const Vector& b, Vector& x,
                  const Preconditioner& M, const CgOptions& opt) {
  telemetry::ScopedPhase phase("cg.solve");
  telemetry::count("cg.solves");
  telemetry::sample_reset("cg.residual");
  const std::size_t n = b.size();
  if (x.size() != n) x.resize(n);

  Vector r(n), z(n), p(n), Ap(n);

  A(x.data(), Ap.data());
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];

  const double bnorm = std::sqrt(simd::dot(b.data(), b.data(), n));
  const double stop = std::max(opt.rtol * bnorm, opt.atol);

  M(r.data(), z.data(), n);
  for (std::size_t i = 0; i < n; ++i) p[i] = z[i];
  double rz = simd::dot(r.data(), z.data(), n);

  CgResult res;
  double rnorm = std::sqrt(simd::dot(r.data(), r.data(), n));
  telemetry::sample("cg.residual", rnorm);
  if (rnorm <= stop) {
    res.converged = true;
    res.residual_norm = rnorm;
    return res;
  }

  // Fused iteration body: the solution update is deferred past the
  // convergence check and folded into the (r, z) reduction, and the
  // residual update is folded into the norm it feeds, so one iteration
  // makes 4 full-vector sweeps (dot, axpy_norm2, axpy_dot, xpay) plus the
  // operator and preconditioner instead of the previous ~7.
  for (std::size_t it = 1; it <= opt.max_iter; ++it) {
    A(p.data(), Ap.data());
    const double pAp = simd::dot(p.data(), Ap.data(), n);
    if (pAp <= 0.0) {  // not SPD / breakdown
      telemetry::count("cg.breakdowns");
      // x was never touched this iteration; report the true residual of the
      // iterate being returned rather than the stale pre-iteration norm.
      A(x.data(), Ap.data());
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
      rnorm = std::sqrt(simd::dot(r.data(), r.data(), n));
      break;
    }
    const double alpha = rz / pAp;
    rnorm = std::sqrt(simd::axpy_norm2(-alpha, Ap.data(), r.data(), n));
    res.iterations = it;
    telemetry::count("cg.iterations");
    telemetry::sample("cg.residual", rnorm);
    if (rnorm <= stop) {
      simd::axpy(alpha, p.data(), x.data(), n);
      res.converged = true;
      break;
    }

    M(r.data(), z.data(), n);
    const double rz_new = simd::axpy_dot(alpha, p.data(), x.data(), r.data(), z.data(), n);
    const double beta = rz_new / rz;
    rz = rz_new;
    simd::xpay(z.data(), beta, p.data(), n);  // p = z + beta p
  }
  res.residual_norm = rnorm;
  return res;
}

std::size_t SolutionProjector::predict(const LinearOperator& A, const Vector& b,
                                       Vector& guess) const {
  (void)A;
  const std::size_t n = b.size();
  guess.resize(n);
  guess.fill(0.0);
  std::size_t used = 0;
  // basis_ is kept A-orthonormal, so the projection coefficients are plain
  // inner products of b with the basis vectors.
  for (std::size_t k = 0; k < basis_.size(); ++k) {
    if (basis_[k].size() != n) continue;
    const double c = simd::dot(b.data(), basis_[k].data(), n);
    simd::axpy(c, basis_[k].data(), guess.data(), n);
    ++used;
  }
  return used;
}

void SolutionProjector::record(const LinearOperator& A, const Vector& x) {
  const std::size_t n = x.size();
  Vector v = x;
  Vector Av(n);

  A(v.data(), Av.data());
  const double xAx = simd::dot(v.data(), Av.data(), n);
  if (xAx <= 0.0) return;

  // A-orthogonalise against the stored basis (modified Gram-Schmidt, done
  // twice: a single pass loses orthogonality exactly in the near-dependent
  // case that matters here). Av is carried through the elimination using
  // the stored images (A basis_k), so the single operator apply above is
  // the only one: A(v - sum c_k basis_k) = Av - sum c_k images_k.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t k = 0; k < basis_.size(); ++k) {
      if (basis_[k].size() != n) continue;
      const double c = simd::dot(v.data(), images_[k].data(), n);
      simd::axpy(-c, basis_[k].data(), v.data(), n);
      simd::axpy(-c, images_[k].data(), Av.data(), n);
    }
  }
  const double vAv = simd::dot(v.data(), Av.data(), n);
  // Reject components that are (numerically) inside the stored span: keeping
  // them would normalise round-off noise into a basis vector and poison
  // later predictions.
  if (vAv <= 1e-12 * xAx) return;
  const double s = 1.0 / std::sqrt(vAv);
  simd::scale(s, v.data(), n);
  simd::scale(s, Av.data(), n);

  basis_.push_back(std::move(v));
  images_.push_back(std::move(Av));
  if (basis_.size() > depth_) {
    basis_.pop_front();
    images_.pop_front();
  }
}

}  // namespace la
