#pragma once
// Small statistics toolkit used by WPOD post-processing (Fig. 7): sample
// moments, histograms / empirical PDFs, and a Gaussian-fit comparison for
// the thermal-fluctuation distribution.

#include <cstddef>
#include <vector>

namespace la::stats {

struct Moments {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) estimator
  double stddev = 0.0;
  double skewness = 0.0;
  double kurtosis_excess = 0.0;
};

Moments moments(const std::vector<double>& x);

struct Histogram {
  double lo = 0.0, hi = 0.0, bin_width = 0.0;
  std::vector<double> centers;
  std::vector<double> density;  ///< normalised so that sum(density)*bin_width = 1
  std::vector<std::size_t> counts;
};

/// Equal-width histogram over [lo, hi]; samples outside are clamped to the
/// edge bins so that total mass is preserved.
Histogram histogram(const std::vector<double>& x, double lo, double hi, std::size_t bins);

/// Standard normal / general gaussian density.
double gaussian_pdf(double x, double mean, double sigma);

/// L1 distance between an empirical density and a gaussian with the given
/// parameters, integrated over the histogram support. 0 = perfect match,
/// 2 = disjoint. Fig. 7 claims the fluctuation PDF is gaussian (sigma~1.03).
double gaussian_l1_distance(const Histogram& h, double mean, double sigma);

}  // namespace la::stats
