#pragma once
// Symmetric eigensolver (cyclic Jacobi rotations). WPOD's method of
// snapshots builds a small dense correlation matrix (Nsnap x Nsnap) whose
// full eigen-decomposition we need; Jacobi is simple, robust, and accurate
// for that size range (<= a few hundred).

#include <cstddef>

#include "la/dense.hpp"
#include "la/vector.hpp"

namespace la {

struct EigResult {
  Vector values;     ///< eigenvalues, sorted descending
  DenseMatrix vecs;  ///< column k is the eigenvector of values[k]
  std::size_t sweeps = 0;
  bool converged = false;
};

/// Full eigen-decomposition of a symmetric matrix.
EigResult eig_symmetric(const DenseMatrix& A, double tol = 1e-12,
                        std::size_t max_sweeps = 64);

}  // namespace la
