#include "la/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace la::stats {

Moments moments(const std::vector<double>& x) {
  Moments m;
  m.n = x.size();
  if (m.n == 0) return m;
  double s = 0.0;
  for (double v : x) s += v;
  m.mean = s / static_cast<double>(m.n);
  if (m.n < 2) return m;

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(m.n);
  m.variance = m2 / (n - 1.0);
  m.stddev = std::sqrt(m.variance);
  const double sig2 = m2 / n;
  if (sig2 > 0.0) {
    m.skewness = (m3 / n) / std::pow(sig2, 1.5);
    m.kurtosis_excess = (m4 / n) / (sig2 * sig2) - 3.0;
  }
  return m;
}

Histogram histogram(const std::vector<double>& x, double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("histogram: bad range/bins");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.bin_width = (hi - lo) / static_cast<double>(bins);
  h.counts.assign(bins, 0);
  h.centers.resize(bins);
  for (std::size_t b = 0; b < bins; ++b)
    h.centers[b] = lo + (static_cast<double>(b) + 0.5) * h.bin_width;

  for (double v : x) {
    auto b = static_cast<long>((v - lo) / h.bin_width);
    b = std::clamp(b, 0L, static_cast<long>(bins) - 1L);
    h.counts[static_cast<std::size_t>(b)]++;
  }
  h.density.resize(bins);
  const double norm = x.empty() ? 0.0
                                : 1.0 / (static_cast<double>(x.size()) * h.bin_width);
  for (std::size_t b = 0; b < bins; ++b)
    h.density[b] = static_cast<double>(h.counts[b]) * norm;
  return h;
}

double gaussian_pdf(double x, double mean, double sigma) {
  const double z = (x - mean) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

double gaussian_l1_distance(const Histogram& h, double mean, double sigma) {
  double d = 0.0;
  for (std::size_t b = 0; b < h.centers.size(); ++b)
    d += std::fabs(h.density[b] - gaussian_pdf(h.centers[b], mean, sigma)) * h.bin_width;
  return d;
}

}  // namespace la::stats
