#pragma once
// Preconditioned conjugate gradient, plus the "good initial state" predictor
// the paper credits for accelerating NEKTAR's Helmholtz/Poisson solves: a
// Fischer-style projection of the new right-hand side onto the span of
// previously computed solutions.

#include <cstddef>
#include <deque>
#include <functional>

#include "la/vector.hpp"

namespace la {

/// Abstract SPD operator: y = A x. Implemented by assembled matrices and by
/// matrix-free SEM operators alike.
using LinearOperator = std::function<void(const double* x, double* y)>;

/// Preconditioner application: z = M^{-1} r (n = vector length).
using Preconditioner = std::function<void(const double* r, double* z, std::size_t n)>;

Preconditioner identity_preconditioner();
/// diag must outlive the returned callable.
Preconditioner jacobi_preconditioner(const Vector& diag);

struct CgOptions {
  double rtol = 1e-10;       ///< stop when ||r|| <= rtol * ||b||
  double atol = 1e-14;       ///< ... or ||r|| <= atol
  std::size_t max_iter = 5000;
};

struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Solve A x = b; x holds the initial guess on entry and the solution on
/// exit.
CgResult cg_solve(const LinearOperator& A, const Vector& b, Vector& x,
                  const Preconditioner& M, const CgOptions& opt = {});

/// Successive-solution projection (Fischer 1998): keeps up to `depth`
/// previous solve solutions and A-applied images, and predicts the initial
/// guess for a new right-hand side as the A-orthogonal projection of b onto
/// their span. Used by the unsteady solvers where the RHS evolves smoothly
/// in time, cutting CG iteration counts several-fold.
class SolutionProjector {
public:
  explicit SolutionProjector(std::size_t depth = 8) : depth_(depth) {}

  /// Fill `guess` from the stored basis given the new rhs b.
  /// Returns the number of basis vectors used (0 -> zero guess).
  std::size_t predict(const LinearOperator& A, const Vector& b, Vector& guess) const;

  /// Record a converged solution so later predicts can use it.
  void record(const LinearOperator& A, const Vector& x);

  std::size_t size() const { return basis_.size(); }
  void clear() {
    basis_.clear();
    images_.clear();
  }

  /// Warm-start state access for checkpoint/restart: the stored basis changes
  /// which initial guess the next solve starts from, so a bitwise-identical
  /// restart must carry it across.
  const std::deque<Vector>& basis() const { return basis_; }
  const std::deque<Vector>& images() const { return images_; }
  void set_state(std::deque<Vector> basis, std::deque<Vector> images) {
    basis_ = std::move(basis);
    images_ = std::move(images);
    while (basis_.size() > depth_) basis_.pop_front();
    while (images_.size() > depth_) images_.pop_front();
  }

private:
  std::size_t depth_;
  std::deque<Vector> basis_;   // previous solutions, A-orthonormalised
  std::deque<Vector> images_;  // A * basis_[k]
};

}  // namespace la
