#pragma once
// SIMD-tuned basic kernels (paper Sec. 3.5, Table 1).
//
// The paper SIMDizes three representative routines on Cray XT5 (SSE) and
// BG/P (Double Hummer):
//   z[i] = x[i] * y[i]
//   a    = sum_i x[i] * y[i] * z[i]
//   a    = sum_i x[i] * y[i] * y[i]
// Here each kernel has a deliberately scalar reference implementation and a
// vectorised implementation (AVX2+FMA on x86-64); dispatch() picks the best
// supported one at runtime. bench/table1_simd measures the speedup ratio.

#include <cstddef>

namespace la::simd {

/// Which implementation the kernels below will use.
enum class Isa { Scalar, Avx2 };

/// Best instruction set supported by the executing CPU.
Isa detect();

// --- scalar reference implementations (kept intentionally unvectorised) ---
void vmul_scalar(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_scalar(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_scalar(const double* x, const double* y, std::size_t n);

// --- vectorised implementations (valid to call only if detect()==Avx2) ---
void vmul_avx2(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_avx2(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_avx2(const double* x, const double* y, std::size_t n);

// --- dispatched entry points used by the solvers ---
void vmul(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy(const double* x, const double* y, std::size_t n);

// Additional dispatched kernels used by CG / time steppers.
double dot(const double* x, const double* y, std::size_t n);
void axpy(double a, const double* x, double* y, std::size_t n);   // y += a*x
void xpay(const double* x, double a, double* y, std::size_t n);   // y = x + a*y
void scale(double a, double* x, std::size_t n);                   // x *= a

}  // namespace la::simd
