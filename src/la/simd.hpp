#pragma once
// SIMD-tuned basic kernels (paper Sec. 3.5, Table 1).
//
// The paper SIMDizes three representative routines on Cray XT5 (SSE) and
// BG/P (Double Hummer):
//   z[i] = x[i] * y[i]
//   a    = sum_i x[i] * y[i] * z[i]
//   a    = sum_i x[i] * y[i] * y[i]
// Here each kernel has a deliberately scalar reference implementation and a
// vectorised implementation (AVX2+FMA on x86-64); dispatch() picks the best
// supported one at runtime. bench/table1_simd measures the speedup ratio.

#include <cstddef>

namespace la::simd {

/// Which implementation the kernels below will use.
enum class Isa { Scalar, Avx2 };

/// Best instruction set supported by the executing CPU.
Isa detect();

// --- scalar reference implementations (kept intentionally unvectorised) ---
void vmul_scalar(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_scalar(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_scalar(const double* x, const double* y, std::size_t n);
void scale_scalar(double a, double* x, std::size_t n);

// --- vectorised implementations (valid to call only if detect()==Avx2) ---
void vmul_avx2(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_avx2(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_avx2(const double* x, const double* y, std::size_t n);
void scale_avx2(double a, double* x, std::size_t n);

// --- dispatched entry points used by the solvers ---
void vmul(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy(const double* x, const double* y, std::size_t n);

// Additional dispatched kernels used by CG / time steppers.
double dot(const double* x, const double* y, std::size_t n);
void axpy(double a, const double* x, double* y, std::size_t n);   // y += a*x
void xpay(const double* x, double a, double* y, std::size_t n);   // y = x + a*y
void scale(double a, double* x, std::size_t n);                   // x *= a

// --- batched DPD pair-force kernel (Groot-Warren) ----------------------
//
// One lane per pair k of a neighbor run: given the minimum-image separation
// (dx,dy,dz) with r2 = dx^2+dy^2+dz^2, the relative velocity (dvx,dvy,dvz)
// = v_j - v_i, the symmetric noise zeta, and per-pair coefficients a
// (conservative), g (dissipative gamma) and sig (= sqrt(2 g kBT), hoisted
// by the caller), computes the force components on particle j:
//
//   w    = 1 - r * inv_rc
//   rv   = (dx dvx + dy dvy + dz dvz) / r
//   fmag = a w - g w^2 rv + sig w zeta inv_sqrt_dt
//   f    = (dx, dy, dz) * fmag / r        (i receives -f)
//
// Lanes with r >= rc or r ~ 0 produce values the caller must discard (the
// kernel does not filter; out-of-range lanes may be non-finite). Within one
// ISA path the result for a lane is a pure function of that lane's inputs —
// independent of n and of the lane's position in the batch (the AVX2 tail is
// padded through the same 4-wide body) — so callers may re-batch the same
// pairs differently and still get bitwise-identical forces.
void dpd_pair_forces(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                     const double* dy, const double* dz, const double* r2, const double* dvx,
                     const double* dvy, const double* dvz, const double* zeta, const double* a,
                     const double* g, const double* sig, double* fx, double* fy, double* fz);
void dpd_pair_forces_scalar(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                            const double* dy, const double* dz, const double* r2,
                            const double* dvx, const double* dvy, const double* dvz,
                            const double* zeta, const double* a, const double* g,
                            const double* sig, double* fx, double* fy, double* fz);
void dpd_pair_forces_avx2(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                          const double* dy, const double* dz, const double* r2,
                          const double* dvx, const double* dvy, const double* dvz,
                          const double* zeta,
                          const double* a, const double* g, const double* sig, double* fx,
                          double* fy, double* fz);

// --- batched SEM line kernels ------------------------------------------
//
// The sum-factorised SEM operators apply one small (P+1)x(P+1) coefficient
// matrix across every line of an element (or of a whole element batch).
// Two memory shapes cover all three tensor directions of the (c,b,a)
// element layout (`a` contiguous):
//
//   lines_apply:   the reduction runs across lines (strided); the kernel
//                  vectorises over the contiguous column index v:
//                    y[b*nvec + v] += coef * colscale[v]
//                                     * sum_m M[b*n1 + m] * u[m*nvec + v]
//                  (y/z passes: columns are (a) or (b,a) flattened).
//
//   lines_apply_t: the reduction runs along each contiguous line; the
//                  kernel broadcasts u and vectorises over the contiguous
//                  output index a using the transposed matrix:
//                    y[l*n1 + a] += coef * rowscale[l]
//                                   * sum_m u[l*n1 + m] * MT[m*n1 + a]
//                  (x pass: one call covers all (b,c) lines of an element).
//
// colscale / rowscale may be nullptr (treated as all-ones; multiplying by
// 1.0 is exact, so the scaled and unscaled paths agree bitwise). Both
// kernels accumulate into y; callers zero the output first. Within one ISA
// path the value written for an output entry is a pure function of its own
// line/column inputs and the matrix — independent of nvec/nlines and of
// the entry's position in the batch (AVX2 tails are padded through the
// same 4-wide body, the lane rule established by dpd_pair_forces) — so
// re-batching planes or whole elements cannot change results bitwise.
// The padded-tail scratch caps n1 at kMaxLineN; larger n1 dispatches to
// the scalar path (P > 23 is far beyond any SEM order used here).
inline constexpr std::size_t kMaxLineN = 24;

void lines_apply(const double* M, std::size_t n1, std::size_t nvec, const double* u, double* y,
                 const double* colscale, double coef);
void lines_apply_scalar(const double* M, std::size_t n1, std::size_t nvec, const double* u,
                        double* y, const double* colscale, double coef);
void lines_apply_avx2(const double* M, std::size_t n1, std::size_t nvec, const double* u,
                      double* y, const double* colscale, double coef);

void lines_apply_t(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                   double* y, const double* rowscale, double coef);
void lines_apply_t_scalar(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                          double* y, const double* rowscale, double coef);
void lines_apply_t_avx2(const double* MT, std::size_t n1, std::size_t nlines, const double* u,
                        double* y, const double* rowscale, double coef);

// --- fused CG vector passes --------------------------------------------
//
// Each CG iteration used to make ~7 separate sweeps over the full-length
// vectors; these two kernels fuse an update with the reduction that
// immediately follows it, cutting the sweep count to ~4 (see la/cg.cpp).
//
//   axpy_norm2: y += a*x, returns ||y||^2 of the updated y
//               (residual update fused with the convergence-check norm).
//   axpy_dot:   y += a*x, returns sum_i u[i]*v[i] over two unrelated
//               vectors read in the same sweep (solution update fused with
//               the (r, z) inner product of the preconditioned residual).
double axpy_norm2(double a, const double* x, double* y, std::size_t n);
double axpy_norm2_scalar(double a, const double* x, double* y, std::size_t n);
double axpy_norm2_avx2(double a, const double* x, double* y, std::size_t n);

double axpy_dot(double a, const double* x, double* y, const double* u, const double* v,
                std::size_t n);
double axpy_dot_scalar(double a, const double* x, double* y, const double* u, const double* v,
                       std::size_t n);
double axpy_dot_avx2(double a, const double* x, double* y, const double* u, const double* v,
                     std::size_t n);

}  // namespace la::simd
