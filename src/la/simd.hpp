#pragma once
// SIMD-tuned basic kernels (paper Sec. 3.5, Table 1).
//
// The paper SIMDizes three representative routines on Cray XT5 (SSE) and
// BG/P (Double Hummer):
//   z[i] = x[i] * y[i]
//   a    = sum_i x[i] * y[i] * z[i]
//   a    = sum_i x[i] * y[i] * y[i]
// Here each kernel has a deliberately scalar reference implementation and a
// vectorised implementation (AVX2+FMA on x86-64); dispatch() picks the best
// supported one at runtime. bench/table1_simd measures the speedup ratio.

#include <cstddef>

namespace la::simd {

/// Which implementation the kernels below will use.
enum class Isa { Scalar, Avx2 };

/// Best instruction set supported by the executing CPU.
Isa detect();

// --- scalar reference implementations (kept intentionally unvectorised) ---
void vmul_scalar(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_scalar(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_scalar(const double* x, const double* y, std::size_t n);
void scale_scalar(double a, double* x, std::size_t n);

// --- vectorised implementations (valid to call only if detect()==Avx2) ---
void vmul_avx2(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz_avx2(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy_avx2(const double* x, const double* y, std::size_t n);
void scale_avx2(double a, double* x, std::size_t n);

// --- dispatched entry points used by the solvers ---
void vmul(double* z, const double* x, const double* y, std::size_t n);
double dot_xyz(const double* x, const double* y, const double* z, std::size_t n);
double dot_xyy(const double* x, const double* y, std::size_t n);

// Additional dispatched kernels used by CG / time steppers.
double dot(const double* x, const double* y, std::size_t n);
void axpy(double a, const double* x, double* y, std::size_t n);   // y += a*x
void xpay(const double* x, double a, double* y, std::size_t n);   // y = x + a*y
void scale(double a, double* x, std::size_t n);                   // x *= a

// --- batched DPD pair-force kernel (Groot-Warren) ----------------------
//
// One lane per pair k of a neighbor run: given the minimum-image separation
// (dx,dy,dz) with r2 = dx^2+dy^2+dz^2, the relative velocity (dvx,dvy,dvz)
// = v_j - v_i, the symmetric noise zeta, and per-pair coefficients a
// (conservative), g (dissipative gamma) and sig (= sqrt(2 g kBT), hoisted
// by the caller), computes the force components on particle j:
//
//   w    = 1 - r * inv_rc
//   rv   = (dx dvx + dy dvy + dz dvz) / r
//   fmag = a w - g w^2 rv + sig w zeta inv_sqrt_dt
//   f    = (dx, dy, dz) * fmag / r        (i receives -f)
//
// Lanes with r >= rc or r ~ 0 produce values the caller must discard (the
// kernel does not filter; out-of-range lanes may be non-finite). Within one
// ISA path the result for a lane is a pure function of that lane's inputs —
// independent of n and of the lane's position in the batch (the AVX2 tail is
// padded through the same 4-wide body) — so callers may re-batch the same
// pairs differently and still get bitwise-identical forces.
void dpd_pair_forces(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                     const double* dy, const double* dz, const double* r2, const double* dvx,
                     const double* dvy, const double* dvz, const double* zeta, const double* a,
                     const double* g, const double* sig, double* fx, double* fy, double* fz);
void dpd_pair_forces_scalar(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                            const double* dy, const double* dz, const double* r2,
                            const double* dvx, const double* dvy, const double* dvz,
                            const double* zeta, const double* a, const double* g,
                            const double* sig, double* fx, double* fy, double* fz);
void dpd_pair_forces_avx2(std::size_t n, double inv_rc, double inv_sqrt_dt, const double* dx,
                          const double* dy, const double* dz, const double* r2,
                          const double* dvx, const double* dvy, const double* dvz,
                          const double* zeta,
                          const double* a, const double* g, const double* sig, double* fx,
                          double* fy, double* fz);

}  // namespace la::simd
