#include "la/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "la/simd.hpp"

namespace la {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix I(n, n);
  for (std::size_t i = 0; i < n; ++i) I(i, i) = 1.0;
  return I;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix T(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) T(j, i) = (*this)(i, j);
  return T;
}

void DenseMatrix::matvec(const double* x, double* y) const {
  for (std::size_t i = 0; i < rows_; ++i) y[i] = simd::dot(row(i), x, cols_);
}

Vector DenseMatrix::matvec(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("matvec: size mismatch");
  Vector y(rows_);
  matvec(x.data(), y.data());
  return y;
}

DenseMatrix DenseMatrix::matmul(const DenseMatrix& A, const DenseMatrix& B) {
  if (A.cols() != B.rows()) throw std::invalid_argument("matmul: size mismatch");
  DenseMatrix C(A.rows(), B.cols());
  // ikj order keeps the inner loop streaming over rows of B and C.
  for (std::size_t i = 0; i < A.rows(); ++i) {
    double* ci = C.row(i);
    for (std::size_t k = 0; k < A.cols(); ++k) {
      const double aik = A(i, k);
      if (aik == 0.0) continue;
      simd::axpy(aik, B.row(k), ci, B.cols());
    }
  }
  return C;
}

double DenseMatrix::frobenius() const {
  double s = 0.0;
  for (std::size_t i = 0; i < rows_ * cols_; ++i) s += a_[i] * a_[i];
  return std::sqrt(s);
}

bool lu_solve(DenseMatrix A, const Vector& b, Vector& x) {
  const std::size_t n = A.rows();
  if (A.cols() != n || b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double pmax = std::fabs(A(k, k));
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::fabs(A(i, k)) > pmax) {
        pmax = std::fabs(A(i, k));
        p = i;
      }
    if (pmax < 1e-300) return false;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(A(k, j), A(p, j));
      std::swap(piv[k], piv[p]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      A(i, k) /= A(k, k);
      const double lik = A(i, k);
      if (lik != 0.0)
        for (std::size_t j = k + 1; j < n; ++j) A(i, j) -= lik * A(k, j);
    }
  }

  x.resize(n);
  // forward substitution on permuted rhs
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[piv[i]];
    for (std::size_t j = 0; j < i; ++j) s -= A(i, j) * x[j];
    x[i] = s;
  }
  // back substitution
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= A(ii, j) * x[j];
    x[ii] = s / A(ii, ii);
  }
  return true;
}

bool cholesky(DenseMatrix& A) {
  const std::size_t n = A.rows();
  for (std::size_t k = 0; k < n; ++k) {
    double d = A(k, k);
    for (std::size_t j = 0; j < k; ++j) d -= A(k, j) * A(k, j);
    if (d <= 0.0) return false;
    A(k, k) = std::sqrt(d);
    for (std::size_t i = k + 1; i < n; ++i) {
      double s = A(i, k);
      for (std::size_t j = 0; j < k; ++j) s -= A(i, j) * A(k, j);
      A(i, k) = s / A(k, k);
    }
  }
  return true;
}

void cholesky_solve(const DenseMatrix& L, const Vector& b, Vector& x) {
  const std::size_t n = L.rows();
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= L(i, j) * x[j];
    x[i] = s / L(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= L(j, ii) * x[j];
    x[ii] = s / L(ii, ii);
  }
}

}  // namespace la
