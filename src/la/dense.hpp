#pragma once
// Dense row-major matrix with the small set of operations the SEM core and
// WPOD need: GEMM, GEMV, transpose, LU solve (partial pivoting), and
// Cholesky. Sizes here are small (elemental operators, POD correlation
// matrices), so clarity wins over blocking.

#include <cstddef>
#include <vector>

#include "la/vector.hpp"

namespace la {

class DenseMatrix {
public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), a_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) { return a_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return a_[i * cols_ + j]; }

  double* row(std::size_t i) { return a_.data() + i * cols_; }
  const double* row(std::size_t i) const { return a_.data() + i * cols_; }

  double* data() { return a_.data(); }
  const double* data() const { return a_.data(); }

  static DenseMatrix identity(std::size_t n);
  DenseMatrix transposed() const;

  /// y = A * x
  void matvec(const double* x, double* y) const;
  Vector matvec(const Vector& x) const;

  /// C = A * B
  static DenseMatrix matmul(const DenseMatrix& A, const DenseMatrix& B);

  /// Frobenius norm.
  double frobenius() const;

private:
  std::size_t rows_ = 0, cols_ = 0;
  Vector a_;
};

/// Solve A x = b by LU with partial pivoting. A is overwritten.
/// Returns false if A is singular to working precision.
bool lu_solve(DenseMatrix A, const Vector& b, Vector& x);

/// In-place Cholesky factorisation (lower triangle); false if not SPD.
bool cholesky(DenseMatrix& A);

/// Solve with a Cholesky factor produced by cholesky().
void cholesky_solve(const DenseMatrix& L, const Vector& b, Vector& x);

}  // namespace la
