#include "la/csr.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "la/simd.hpp"

namespace la {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<std::size_t> is, std::vector<std::size_t> js,
                                   std::vector<double> vs) {
  if (is.size() != js.size() || js.size() != vs.size())
    throw std::invalid_argument("from_triplets: ragged input");
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  std::vector<std::size_t> order(is.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return is[a] != is[b] ? is[a] < is[b] : js[a] < js[b];
  });

  m.rowptr.assign(rows + 1, 0);
  std::size_t last_i = rows, last_j = cols;  // sentinel: no previous entry
  for (std::size_t k : order) {
    if (is[k] >= rows || js[k] >= cols) throw std::out_of_range("from_triplets: index");
    if (is[k] == last_i && js[k] == last_j) {
      m.val.back() += vs[k];  // merge duplicate
      continue;
    }
    m.colidx.push_back(js[k]);
    m.val.push_back(vs[k]);
    m.rowptr[is[k] + 1]++;
    last_i = is[k];
    last_j = js[k];
  }
  for (std::size_t i = 0; i < rows; ++i) m.rowptr[i + 1] += m.rowptr[i];
  return m;
}

void CsrMatrix::matvec(const double* x, double* y) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) s += val[k] * x[colidx[k]];
    y[i] = s;
  }
}

Vector CsrMatrix::matvec(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("csr matvec: size mismatch");
  Vector y(rows_);
  matvec(x.data(), y.data());
  return y;
}

Vector CsrMatrix::diagonal() const {
  Vector d(std::min(rows_, cols_));
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
      if (colidx[k] == i) d[i] = val[k];
  return d;
}

void BlockCsr::append_block(std::size_t i, std::size_t j, const DenseMatrix& blk) {
  if (blk.rows() != b_ || blk.cols() != b_) throw std::invalid_argument("append_block: size");
  if (i < cur_row_) throw std::invalid_argument("append_block: rows must be non-decreasing");
  while (cur_row_ < i) finish_row(cur_row_);
  colidx.push_back(j);
  blocks.insert(blocks.end(), blk.data(), blk.data() + b_ * b_);
  rowptr[i + 1] = colidx.size();
}

void BlockCsr::finish_row(std::size_t i) {
  rowptr[i + 1] = std::max(rowptr[i + 1], rowptr[i]);
  cur_row_ = i + 1;
}

void BlockCsr::matvec(const double* x, double* y) const {
  for (std::size_t i = 0; i < brows_; ++i) {
    double* yi = y + i * b_;
    for (std::size_t r = 0; r < b_; ++r) yi[r] = 0.0;
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const double* blk = blocks.data() + k * b_ * b_;
      const double* xj = x + colidx[k] * b_;
      for (std::size_t r = 0; r < b_; ++r) yi[r] += simd::dot(blk + r * b_, xj, b_);
    }
  }
}

}  // namespace la
