#pragma once
// Verlet neighbor-list engine for the DPD force path (paper Sec. 3.5: the
// DPD-LAMMPS hot loops). A cell grid with cells of size >= rc + skin bins
// the particles; from it we build a half neighbor list (each pair stored
// once, under its lower index, runs sorted ascending) that is *reused*
// across force evaluations until any particle has moved farther than
// skin/2 from its position at build time — the classic Verlet-list
// criterion that guarantees no interacting pair (r < rc) is ever missed.
//
// The canonical (i ascending, j ascending within each run) pair ordering is
// load-bearing: the force loop skips out-of-range pairs entirely, so the
// floating-point summation order of the *contributing* pairs is a function
// of the particle state alone, not of when the list was last rebuilt. That
// is what keeps checkpoint/restart bitwise identical even though a restart
// rebuilds the list while an uninterrupted run may still be reusing an
// older (valid) one. Under spatial decomposition (exchange/) the same
// property extends across ranks: local arrays are kept sorted by global
// particle ID, so index order == gid order and every rank accumulates an
// owned particle's pair forces in exactly the single-rank order.
//
// Positions are structure-of-arrays (soa.hpp); build/ensure/query stream
// the flat x/y/z lanes. An optional ghost-pair filter drops pairs no rank
// is responsible for (both-ghost pairs, or — in the reverse-exchange mode —
// pairs whose lower member is a ghost).
//
// The same cell grid serves point queries (query()) for sparse secondary
// scans — platelet adhesion and thrombus-arrest checks — which would
// otherwise rescan particle subsets quadratically.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dpd/soa.hpp"
#include "dpd/types.hpp"

namespace dpd {

struct NeighborParams {
  Vec3 box{20.0, 10.0, 10.0};
  std::array<bool, 3> periodic{true, true, false};
  double rc = 1.0;    ///< interaction cutoff
  double skin = 0.3;  ///< Verlet skin: list radius is rc + skin
};

class NeighborList {
public:
  NeighborList() = default;
  explicit NeighborList(const NeighborParams& p) { configure(p); }

  /// Set the geometry/cutoff parameters; drops any existing list.
  void configure(const NeighborParams& p);
  const NeighborParams& params() const { return prm_; }

  /// Exclude pairs from the half list that no local computation needs:
  /// with `is_ghost` set, both-ghost pairs are skipped; with
  /// `owned_lower_only` additionally every pair whose *lower-index* member
  /// is a ghost (reverse-exchange mode: the lower member's owner computes
  /// the pair). Pass nullptr to clear. The mask must outlive the list and
  /// cover every particle at build time; changing it invalidates the list.
  void set_pair_filter(const std::vector<char>* is_ghost, bool owned_lower_only = false) {
    ghost_ = is_ghost;
    owned_lower_only_ = owned_lower_only;
    invalidate();
  }

  /// Make the list valid for `pos`: reuse it when every particle has moved
  /// less than skin/2 since the last build, rebuild otherwise. Returns true
  /// iff a rebuild happened.
  bool ensure(const SoA3& pos);

  /// Drop the list (particle insertion/deletion, wholesale state reload).
  void invalidate() { valid_ = false; }
  /// ForceModule-style remap hook: indices changed, the list is meaningless.
  void on_remap(const std::vector<long>& new_index) {
    (void)new_index;
    invalidate();
  }
  bool valid() const { return valid_; }

  // --- stats (telemetry mirrors these as dpd.nlist.* counters) ---
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t reuses() const { return reuses_; }
  std::size_t pair_count() const { return neighbors_.size(); }
  /// True when a periodic dimension has < 3 cells and the pair list had to
  /// be built by direct O(N^2) enumeration (half-stencil double-counts).
  bool degenerate() const { return degenerate_; }

  /// CSR half list: pairs of particle i live in
  /// neighbors_[offsets()[i] .. offsets()[i+1]), sorted ascending, j > i.
  const std::vector<std::size_t>& offsets() const { return offsets_; }
  const std::vector<std::uint32_t>& neighbors() const { return neighbors_; }

  /// Minimum-image displacement a -> b under the configured periodicity.
  Vec3 min_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = b - a;
    auto mi = [](double v, double L) {
      if (v > 0.5 * L) return v - L;
      if (v < -0.5 * L) return v + L;
      return v;
    };
    if (prm_.periodic[0]) d.x = mi(d.x, prm_.box.x);
    if (prm_.periodic[1]) d.y = mi(d.y, prm_.box.y);
    if (prm_.periodic[2]) d.z = mi(d.z, prm_.box.z);
    return d;
  }

  /// Visit every interacting pair (r < rc at *current* positions) once:
  /// fn(i, j, dr = xj - xi minimum image, r). Requires a valid list.
  template <class Fn>
  void for_each(const SoA3& pos, Fn&& fn) const {
    const double rc2 = prm_.rc * prm_.rc;
    const std::size_t n = offsets_.empty() ? 0 : offsets_.size() - 1;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        const std::size_t j = neighbors_[k];
        const Vec3 dr = min_image(pos[i], pos[j]);
        const double r2 = dr.norm2();
        if (r2 < rc2 && r2 > 1e-20) fn(i, j, dr, std::sqrt(r2));
      }
    }
  }

  /// Visit every particle within `cutoff` of point `p` (current positions):
  /// fn(j, dr = xj - p minimum image, r2). Walks only the grid cells that
  /// can hold such a particle, padding the search radius by skin/2 because
  /// the grid bins build-time positions. The caller must have ensure()d the
  /// list against the same position array.
  template <class Fn>
  void query(const SoA3& pos, const Vec3& p, double cutoff, Fn&& fn) const {
    const double c2 = cutoff * cutoff;
    if (!valid_) {
      for (std::size_t j = 0; j < pos.size(); ++j) {
        const Vec3 dr = min_image(p, pos[j]);
        const double r2 = dr.norm2();
        if (r2 <= c2) fn(j, dr, r2);
      }
      return;
    }
    const double pad = cutoff + 0.5 * prm_.skin;
    Vec3 q = p;
    wrap(q);
    const int bx = cell_coord(q.x, prm_.box.x, ncx_);
    const int by = cell_coord(q.y, prm_.box.y, ncy_);
    const int bz = cell_coord(q.z, prm_.box.z, ncz_);
    const std::vector<int> cx = cells_along(bx, pad, csx_, ncx_, prm_.periodic[0]);
    const std::vector<int> cy = cells_along(by, pad, csy_, ncy_, prm_.periodic[1]);
    const std::vector<int> cz = cells_along(bz, pad, csz_, ncz_, prm_.periodic[2]);
    for (int a : cz)
      for (int b : cy)
        for (int c : cx) {
          const std::size_t cell =
              (static_cast<std::size_t>(a) * ncy_ + b) * static_cast<std::size_t>(ncx_) + c;
          for (long j = cell_head_[cell]; j >= 0; j = cell_next_[static_cast<std::size_t>(j)]) {
            const Vec3 dr = min_image(p, pos[static_cast<std::size_t>(j)]);
            const double r2 = dr.norm2();
            if (r2 <= c2) fn(static_cast<std::size_t>(j), dr, r2);
          }
        }
  }

private:
  void build(const SoA3& pos);

  void wrap(Vec3& p) const {
    auto wrap1 = [](double v, double L) {
      v = std::fmod(v, L);
      return v < 0.0 ? v + L : v;
    };
    if (prm_.periodic[0]) p.x = wrap1(p.x, prm_.box.x);
    if (prm_.periodic[1]) p.y = wrap1(p.y, prm_.box.y);
    if (prm_.periodic[2]) p.z = wrap1(p.z, prm_.box.z);
  }

  static int cell_coord(double v, double L, int n) {
    const int c = static_cast<int>(v / L * n);
    return c < 0 ? 0 : (c >= n ? n - 1 : c);
  }

  /// Cells along one dimension whose contents can lie within `pad` of cell
  /// `base` (periodic wrap, each cell listed at most once).
  static std::vector<int> cells_along(int base, double pad, double cell_size, int n, bool per) {
    const int reach = static_cast<int>(std::ceil(pad / cell_size));
    std::vector<int> out;
    if (2 * reach + 1 >= n) {
      out.resize(static_cast<std::size_t>(n));
      for (int c = 0; c < n; ++c) out[static_cast<std::size_t>(c)] = c;
      return out;
    }
    out.reserve(static_cast<std::size_t>(2 * reach + 1));
    for (int d = -reach; d <= reach; ++d) {
      int c = base + d;
      if (c < 0) {
        if (!per) continue;
        c += n;
      } else if (c >= n) {
        if (!per) continue;
        c -= n;
      }
      out.push_back(c);
    }
    return out;
  }

  NeighborParams prm_;
  bool valid_ = false;
  bool degenerate_ = false;

  // optional decomposition pair filter (see set_pair_filter)
  const std::vector<char>* ghost_ = nullptr;
  bool owned_lower_only_ = false;

  // cell grid over build-time positions
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
  double csx_ = 0.0, csy_ = 0.0, csz_ = 0.0;
  std::vector<long> cell_head_, cell_next_;

  SoA3 ref_pos_;  ///< positions at build time (rebuild trigger)
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> neighbors_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pair_scratch_;

  std::uint64_t rebuilds_ = 0, reuses_ = 0;
};

}  // namespace dpd
