#pragma once
// Platelet aggregation / thrombus formation model, following Pivkin,
// Richardson & Karniadakis (PNAS 2006) as adapted by the paper for clotting
// in the aneurysm: platelets are spherical DPD particles with an activation
// state machine
//   Passive -> Triggered (on entering the adhesive wall region)
//   Triggered -> Active (after the activation delay time)
//   Active -> Bound (arrest at the wall or onto already-bound platelets)
// Active/Bound platelets attract each other and the adhesive wall through a
// Morse-like potential; Bound platelets are frozen and become part of the
// growing thrombus.
//
// Platelets are tracked by *global* particle ID and the slot table is
// replicated across ranks under decomposition: every rank holds the same
// (gid, state, trigger_time) rows, each rank resolves gids to local slots
// per pass and applies forces only to particles it owns, and the owner of a
// platelet decides its state transitions (exchange::DistributedDpd
// broadcasts them after every update()). The update is two-phase — all
// transitions are decided against the pre-update states, then applied — so
// the result is independent of slot order and of decomposition (a platelet
// arrests onto a thrombus member one step after that member bound, never in
// the same pass).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dpd/system.hpp"

namespace dpd {

struct PlateletParams {
  /// Is a point inside the adhesive (damaged-endothelium) wall region?
  /// Setup-time configuration, evaluated per platelet (not per pair).
  // lint: std-function-ok (setup-time callback, not a pair-loop parameter)
  std::function<bool(const Vec3&)> adhesive_region;
  double trigger_distance = 1.0;   ///< wall distance that triggers activation
  double activation_delay = 2.0;   ///< time between trigger and adhesiveness
  double morse_D = 20.0;           ///< adhesion strength
  double morse_beta = 2.0;         ///< adhesion range parameter
  double morse_r0 = 0.6;           ///< equilibrium adhesion distance
  double adhesion_cutoff = 1.5;    ///< max interaction distance
  double bind_distance = 0.6;      ///< arrest distance (to wall or bound platelet)
  double bind_speed = 0.8;         ///< arrest only below this speed
  double wall_pull = 15.0;         ///< attraction of active platelets to the wall
};

class PlateletModel final : public ForceModule {
public:
  explicit PlateletModel(PlateletParams p);

  /// Register a platelet by global particle ID (the particle must already
  /// exist in the system; for a fresh system gid == insertion index).
  void add_platelet(std::uint32_t gid);

  /// Insert `count` platelets at random fluid positions (margin from walls).
  void seed_platelets(DpdSystem& sys, std::size_t count, unsigned seed = 11);

  void add_forces(DpdSystem& sys) override;
  /// Drop slots whose particle was removed from the system.
  void on_remove_gids(const std::vector<std::uint32_t>& gids) override;

  /// State machine update; call once per step (after sys.step()). Only
  /// owned platelets transition — under decomposition, follow with
  /// DistributedDpd's platelet sync so every replica agrees.
  void update(DpdSystem& sys);

  std::size_t count(PlateletState s) const;
  std::size_t total() const { return particles_.size(); }

  /// Checkpoint the per-platelet state machine (gids, states, trigger
  /// times); parameters are configuration.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);
  /// Global particle IDs, one per platelet slot.
  const std::vector<std::uint32_t>& particles() const { return particles_; }
  PlateletState state_of(std::size_t k) const { return state_[k]; }
  double trigger_time_of(std::size_t k) const { return trigger_time_[k]; }
  /// Overwrite one slot's state-machine row (decomposition sync only).
  void set_slot_state(std::size_t k, PlateletState s, double trigger_time) {
    state_[k] = s;
    trigger_time_[k] = trigger_time;
  }

private:
  /// Platelet slot of particle gid, or npos. Backed by an index map kept in
  /// sync by add_platelet/on_remove_gids/load_state so the cell-grid
  /// queries in add_forces/update resolve candidates in O(1).
  std::size_t platelet_of(std::uint32_t gid) const {
    const auto it = index_of_.find(gid);
    return it == index_of_.end() ? static_cast<std::size_t>(-1) : it->second;
  }
  void rebuild_index();

  // analyze: no-checkpoint (constructor configuration, incl. the region callback)
  PlateletParams prm_;
  std::vector<std::uint32_t> particles_;  ///< particle gid per platelet slot
  std::vector<PlateletState> state_;
  std::vector<double> trigger_time_;
  // analyze: no-checkpoint (rebuilt from particles_ by load_state/rebuild_index)
  std::unordered_map<std::uint32_t, std::size_t> index_of_;  ///< gid -> slot
  /// Scratch for add_forces: adhesive (gid, gid) pairs, sorted before
  /// application so force accumulation order is grid-independent.
  // analyze: no-checkpoint (per-call scratch, dead between force passes)
  std::vector<std::pair<std::uint32_t, std::uint32_t>> adhesive_pairs_;
  // analyze: no-checkpoint (per-call scratch of the two-phase update)
  std::vector<PlateletState> next_state_;
  // analyze: no-checkpoint (per-call scratch of the two-phase update)
  std::vector<double> next_trigger_;
};

}  // namespace dpd
