#pragma once
// Platelet aggregation / thrombus formation model, following Pivkin,
// Richardson & Karniadakis (PNAS 2006) as adapted by the paper for clotting
// in the aneurysm: platelets are spherical DPD particles with an activation
// state machine
//   Passive -> Triggered (on entering the adhesive wall region)
//   Triggered -> Active (after the activation delay time)
//   Active -> Bound (arrest at the wall or onto already-bound platelets)
// Active/Bound platelets attract each other and the adhesive wall through a
// Morse-like potential; Bound platelets are frozen and become part of the
// growing thrombus.

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dpd/system.hpp"

namespace dpd {

struct PlateletParams {
  /// Is a point inside the adhesive (damaged-endothelium) wall region?
  /// Setup-time configuration, evaluated per platelet (not per pair).
  // lint: std-function-ok (setup-time callback, not a pair-loop parameter)
  std::function<bool(const Vec3&)> adhesive_region;
  double trigger_distance = 1.0;   ///< wall distance that triggers activation
  double activation_delay = 2.0;   ///< time between trigger and adhesiveness
  double morse_D = 20.0;           ///< adhesion strength
  double morse_beta = 2.0;         ///< adhesion range parameter
  double morse_r0 = 0.6;           ///< equilibrium adhesion distance
  double adhesion_cutoff = 1.5;    ///< max interaction distance
  double bind_distance = 0.6;      ///< arrest distance (to wall or bound platelet)
  double bind_speed = 0.8;         ///< arrest only below this speed
  double wall_pull = 15.0;         ///< attraction of active platelets to the wall
};

class PlateletModel final : public ForceModule {
public:
  explicit PlateletModel(PlateletParams p);

  /// Register a platelet particle (must already exist in the system).
  void add_platelet(std::size_t particle_index);

  /// Insert `count` platelets at random fluid positions (margin from walls).
  void seed_platelets(DpdSystem& sys, std::size_t count, unsigned seed = 11);

  void add_forces(DpdSystem& sys) override;
  void on_remap(const std::vector<long>& new_index) override;

  /// State machine update; call once per step (after sys.step()).
  void update(DpdSystem& sys);

  std::size_t count(PlateletState s) const;
  std::size_t total() const { return particles_.size(); }

  /// Checkpoint the per-platelet state machine (indices, states, trigger
  /// times); parameters are configuration.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);
  const std::vector<std::size_t>& particles() const { return particles_; }
  PlateletState state_of(std::size_t k) const { return state_[k]; }

private:
  /// Platelet slot of particle j, or npos. Backed by an index map kept in
  /// sync by add_platelet/on_remap/load_state so the cell-grid queries in
  /// add_forces/update resolve candidates in O(1).
  std::size_t platelet_of(std::size_t particle) const {
    const auto it = index_of_.find(particle);
    return it == index_of_.end() ? static_cast<std::size_t>(-1) : it->second;
  }
  void rebuild_index();

  // analyze: no-checkpoint (constructor configuration, incl. the region callback)
  PlateletParams prm_;
  std::vector<std::size_t> particles_;  ///< particle index per platelet
  std::vector<PlateletState> state_;
  std::vector<double> trigger_time_;
  // analyze: no-checkpoint (rebuilt from particles_ by load_state/rebuild_index)
  std::unordered_map<std::size_t, std::size_t> index_of_;  ///< particle -> slot
  /// Scratch for add_forces: adhesive (i, j) particle pairs, sorted before
  /// application so force accumulation order is grid-independent.
  // analyze: no-checkpoint (per-call scratch, dead between force passes)
  std::vector<std::pair<std::size_t, std::size_t>> adhesive_pairs_;
};

}  // namespace dpd
