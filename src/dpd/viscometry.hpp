#pragma once
// DPD fluid viscometry. The Eq.-(1) unit scaling needs nu_DPD, which for a
// DPD fluid is an emergent property of (a, gamma, rho, kBT, dt) rather than
// an input. measure_viscosity() runs a body-force-driven plane-Poiseuille
// numerical experiment and fits the parabolic profile:
//
//   u(z) = (g rho / (2 mu)) z (H - z)   =>   mu = g rho H^2 / (8 u_max)
//
// so coupled setups can calibrate the scale map against the actual fluid
// instead of assuming a value.

#include "dpd/system.hpp"

namespace dpd {

struct ViscometryParams {
  double density = 3.0;
  double body_force = 0.08;
  double channel_height = 5.0;   ///< small: Poiseuille develops in ~t = 0.1 H^2/nu
  double box_len = 8.0;          ///< periodic extent in x and y
  int warmup_steps = 2500;
  int sample_steps = 2500;
  int bins = 12;
  unsigned seed = 3;
  /// Pair/thermostat parameters to measure (defaults: standard fluid).
  DpdParams dpd;
};

struct ViscometryResult {
  double dynamic_viscosity = 0.0;    ///< mu
  double kinematic_viscosity = 0.0;  ///< nu = mu / rho
  double u_max = 0.0;                ///< fitted centerline speed
  double fit_residual = 0.0;         ///< rms of (profile - fit) / u_max
  double measured_temperature = 0.0;
};

/// Run the Poiseuille experiment and fit. Deterministic for a given seed.
ViscometryResult measure_viscosity(const ViscometryParams& p = {});

}  // namespace dpd
