#pragma once
// Core DPD engine (the in-house DPD-LAMMPS stand-in): soft pairwise
// conservative + dissipative + random forces (Groot & Warren 1997,
// Hoogerbrugge & Koelman 1992), cell-list neighbour search, modified
// velocity-Verlet integration, SDF walls with effective boundary forces and
// bounce-back, plus pluggable force modules (bonded cells, platelet
// adhesion).

#include <array>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "dpd/geometry.hpp"
#include "dpd/types.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace dpd {

class DpdSystem;

/// Extra force contributions evaluated every force pass (bond networks,
/// adhesion models, coupling buffers...).
class ForceModule {
public:
  virtual ~ForceModule() = default;
  virtual void add_forces(DpdSystem& sys) = 0;
  /// Called after particle removal: new_index[i] is the new position of old
  /// particle i, or -1 if removed.
  virtual void on_remap(const std::vector<long>& new_index) { (void)new_index; }
};

struct DpdParams {
  Vec3 box{20.0, 10.0, 10.0};
  std::array<bool, 3> periodic{true, true, false};
  double rc = 1.0;
  double kBT = 1.0;
  double dt = 0.01;
  double lambda = 0.65;  ///< Groot-Warren velocity prediction factor

  /// Pair coefficients by species (symmetric): conservative repulsion a_ij
  /// and dissipative gamma_ij (sigma_ij = sqrt(2 gamma_ij kBT)).
  std::array<std::array<double, kNumSpecies>, kNumSpecies> a{};
  std::array<std::array<double, kNumSpecies>, kNumSpecies> gamma{};

  double wall_force = 40.0;  ///< effective boundary force amplitude
  /// Dissipative wall friction: together with bounce-back this enforces
  /// no-slip (a wall made of particles would exert exactly this kind of
  /// drag on near-wall fluid).
  double wall_gamma = 12.0;

  DpdParams() {
    for (auto& row : a) row.fill(25.0);
    for (auto& row : gamma) row.fill(4.5);
  }
};

class DpdSystem {
public:
  DpdSystem(const DpdParams& prm, std::shared_ptr<Geometry> geom);

  const DpdParams& params() const { return prm_; }
  const Geometry& geometry() const { return *geom_; }

  // --- population ---
  std::size_t add_particle(const Vec3& pos, const Vec3& vel, Species s);
  /// Fill the fluid region (sdf > margin) with `density` particles per unit
  /// volume at Maxwellian velocities; returns number inserted.
  std::size_t fill(double density, Species s, unsigned seed = 7, double margin = 0.0);
  /// Remove particles by index (order-irrelevant); modules are remapped.
  void remove_particles(std::vector<std::size_t> idx);

  std::size_t size() const { return pos_.size(); }
  std::vector<Vec3>& positions() { return pos_; }
  std::vector<Vec3>& velocities() { return vel_; }
  std::vector<Vec3>& forces() { return frc_; }
  const std::vector<Vec3>& positions() const { return pos_; }
  const std::vector<Vec3>& velocities() const { return vel_; }
  std::vector<Species>& species() { return species_; }
  const std::vector<Species>& species() const { return species_; }
  /// Frozen particles (bound platelets, wall dummies) do not move.
  std::vector<char>& frozen() { return frozen_; }
  const std::vector<char>& frozen() const { return frozen_; }

  void add_module(std::shared_ptr<ForceModule> m) { modules_.push_back(std::move(m)); }

  /// Per-particle external force (body force / pressure gradient).
  using BodyForceFn = std::function<Vec3(const Vec3& pos, Species s)>;
  void set_body_force(BodyForceFn f) { body_force_ = std::move(f); }

  // --- dynamics ---
  /// Recompute frc_ from scratch (pair + wall + body + modules).
  void compute_forces();
  /// One modified-velocity-Verlet step (incl. wall reflection, wrapping).
  void step();
  std::uint64_t step_count() const { return step_; }
  double time() const { return static_cast<double>(step_) * prm_.dt; }

  // --- diagnostics ---
  double kinetic_temperature() const;
  Vec3 total_momentum() const;
  /// Number density of a species over the whole fluid volume estimate.
  std::size_t count_species(Species s) const;

  /// Minimum-image displacement a -> b under the box periodicity.
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// The engine's persistent RNG (used by fill(); exposed so restart can
  /// capture and restore the exact engine state).
  std::mt19937& rng() { return rng_; }
  const std::mt19937& rng() const { return rng_; }

  /// Checkpoint the full particle state: step counter, positions/velocities,
  /// current and previous forces (the modified-velocity-Verlet half-step
  /// memory), species, frozen flags, and the RNG engine — everything needed
  /// for a bitwise-identical restart. Modules serialise separately.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

  /// Loop over all interacting pairs (r < rc) via the cell list; fn gets
  /// (i, j, dr = xj - xi minimum image, r). Rebuilds the cell list.
  void for_each_pair(const std::function<void(std::size_t, std::size_t, const Vec3&, double)>& fn);

private:
  void build_cells();
  void wrap(Vec3& p) const;
  void reflect_walls(std::size_t i);
  void pair_forces();

  DpdParams prm_;
  std::shared_ptr<Geometry> geom_;

  std::vector<Vec3> pos_, vel_, frc_, frc_old_;
  std::vector<Species> species_;
  std::vector<char> frozen_;
  std::vector<std::shared_ptr<ForceModule>> modules_;
  BodyForceFn body_force_;

  // cell list
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
  std::vector<long> cell_head_;
  std::vector<long> cell_next_;

  std::uint64_t step_ = 0;
  std::mt19937 rng_{0xD1CEu};
};

}  // namespace dpd
