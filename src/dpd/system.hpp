#pragma once
// Core DPD engine (the in-house DPD-LAMMPS stand-in): soft pairwise
// conservative + dissipative + random forces (Groot & Warren 1997,
// Hoogerbrugge & Koelman 1992), Verlet neighbor-list pair search with an
// AVX2-batched force kernel (see docs/PERF.md), modified velocity-Verlet
// integration, SDF walls with effective boundary forces and bounce-back,
// plus pluggable force modules (bonded cells, platelet adhesion).
//
// Particle state lives in structure-of-arrays lanes (soa.hpp) and every
// particle carries a stable 32-bit global ID. The counter-based pair RNG is
// keyed on gids, never on local indices, so trajectories are invariant to
// index compaction (remove_particles) and to how particles are distributed
// over ranks (src/dpd/exchange/). A system can host ghost particles —
// read-only images of particles owned by neighbouring subdomains — marked
// in is_ghost_ and excluded from integration and diagnostics; the
// ExchangeHook seam lets the decomposition driver refresh them before
// every force evaluation.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "dpd/geometry.hpp"
#include "dpd/neighbor.hpp"
#include "dpd/soa.hpp"
#include "dpd/types.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace dpd {

class DpdSystem;

/// Extra force contributions evaluated every force pass (bond networks,
/// adhesion models, coupling buffers...).
class ForceModule {
public:
  virtual ~ForceModule() = default;
  virtual void add_forces(DpdSystem& sys) = 0;
  /// Called after particle removal: new_index[i] is the new position of old
  /// particle i, or -1 if removed. Modules tracking particles by *local
  /// index* translate here; gid-keyed modules can ignore it.
  virtual void on_remap(const std::vector<long>& new_index) { (void)new_index; }
  /// Called after particle removal with the global IDs that vanished, so
  /// gid-keyed modules (bonds, platelets) can prune dead references.
  virtual void on_remove_gids(const std::vector<std::uint32_t>& gids) { (void)gids; }
};

/// Domain-decomposition seam (implemented by exchange::DistributedDpd).
/// step() calls refresh() immediately before every force evaluation so the
/// driver can migrate owners, rebuild halos, and push current ghost
/// positions/velocities; compute_forces() calls after_pairs() right after
/// the pair loop — while the force array holds *only* pair contributions —
/// so the reverse-exchange mode can ship ghost-accumulated forces home.
class ExchangeHook {
public:
  virtual ~ExchangeHook() = default;
  virtual void refresh(DpdSystem& sys) = 0;
  /// True when refresh() left a split-phase ghost update in flight: ghost
  /// slots still hold stale pos/vel, and the engine must compute only
  /// interior (owned-only) neighbor rows until finish_refresh() completes
  /// the exchange. Drives DpdSystem's overlapped pair pass.
  virtual bool overlap_pending() const { return false; }
  /// Complete an in-flight split-phase refresh (no-op otherwise). Called by
  /// the engine between its interior and boundary row passes.
  virtual void finish_refresh(DpdSystem& sys) { (void)sys; }
  virtual void after_pairs(DpdSystem& sys) { (void)sys; }
};

/// Flat particle record used by the exchange layer to (re)build a rank's
/// local population (migration, halo build, scatter/gather).
struct ParticleRecord {
  std::uint32_t gid = 0;
  std::uint8_t species = 0;
  std::uint8_t frozen = 0;
  std::uint8_t ghost = 0;
  Vec3 pos{};
  Vec3 vel{};      ///< contents of vel_ at capture time (predicted inside a step)
  Vec3 aux_vel{};  ///< contents of v_pred_ at capture time (actual inside a step)
  Vec3 frc_old{};  ///< previous-step force (velocity-Verlet half-step memory)
};

struct DpdParams {
  Vec3 box{20.0, 10.0, 10.0};
  std::array<bool, 3> periodic{true, true, false};
  double rc = 1.0;
  double kBT = 1.0;
  double dt = 0.01;
  double lambda = 0.65;  ///< Groot-Warren velocity prediction factor
  /// Verlet-list skin radius: the neighbor list covers rc + skin and is
  /// reused until some particle moves farther than skin/2 (0 disables
  /// reuse: rebuild on every force evaluation).
  double skin = 0.3;

  /// Pair coefficients by species (symmetric): conservative repulsion a_ij
  /// and dissipative gamma_ij (sigma_ij = sqrt(2 gamma_ij kBT)).
  std::array<std::array<double, kNumSpecies>, kNumSpecies> a{};
  std::array<std::array<double, kNumSpecies>, kNumSpecies> gamma{};

  double wall_force = 40.0;  ///< effective boundary force amplitude
  /// Dissipative wall friction: together with bounce-back this enforces
  /// no-slip (a wall made of particles would exert exactly this kind of
  /// drag on near-wall fluid).
  double wall_gamma = 12.0;

  DpdParams() {
    for (auto& row : a) row.fill(25.0);
    for (auto& row : gamma) row.fill(4.5);
  }
};

class DpdSystem {
public:
  DpdSystem(const DpdParams& prm, std::shared_ptr<Geometry> geom);

  const DpdParams& params() const { return prm_; }
  const Geometry& geometry() const { return *geom_; }

  // --- population ---
  std::size_t add_particle(const Vec3& pos, const Vec3& vel, Species s);
  /// Fill the fluid region (sdf > margin) with `density` particles per unit
  /// volume at Maxwellian velocities; returns number inserted.
  std::size_t fill(double density, Species s, unsigned seed = 7, double margin = 0.0);
  /// Remove particles by index (order-irrelevant); modules are remapped.
  /// Global IDs of surviving particles are preserved, so the pair-RNG
  /// stream of every surviving pair is unchanged by the compaction.
  void remove_particles(std::vector<std::size_t> idx);

  std::size_t size() const { return pos_.size(); }
  SoA3& positions() { return pos_; }
  SoA3& velocities() { return vel_; }
  SoA3& forces() { return frc_; }
  const SoA3& positions() const { return pos_; }
  const SoA3& velocities() const { return vel_; }
  const SoA3& forces() const { return frc_; }
  std::vector<Species>& species() { return species_; }
  const std::vector<Species>& species() const { return species_; }
  /// Frozen particles (bound platelets, wall dummies) do not move.
  std::vector<char>& frozen() { return frozen_; }
  const std::vector<char>& frozen() const { return frozen_; }

  // --- global particle identity & decomposition ---
  const std::vector<std::uint32_t>& gids() const { return gid_; }
  std::uint32_t gid_of(std::size_t i) const { return gid_[i]; }
  /// Local index of a global ID, or -1 when the particle is neither owned
  /// nor ghosted here.
  long local_of(std::uint32_t gid) const {
    auto it = gid_to_local_.find(gid);
    return it == gid_to_local_.end() ? -1 : static_cast<long>(it->second);
  }
  /// Ghost mask: 1 for halo images owned by another rank (skipped by the
  /// integrator and by diagnostics), 0 for owned particles.
  const std::vector<char>& ghost_mask() const { return is_ghost_; }
  bool is_ghost(std::size_t i) const { return is_ghost_[i] != 0; }
  std::size_t owned_count() const;
  /// Next gid add_particle() would assign (the global allocation cursor; a
  /// decomposition driver keeps it identical on every rank).
  std::uint32_t next_gid() const { return next_gid_; }
  void set_next_gid(std::uint32_t g) { next_gid_ = g; }

  /// Install (or clear, with nullptr) the decomposition driver. The hook is
  /// borrowed, not owned, and must outlive the system or be cleared first.
  void set_exchange(ExchangeHook* h) { exchange_ = h; }
  bool distributed() const { return exchange_ != nullptr; }
  /// Enable/disable the neighbor-list ghost pair filter (see
  /// NeighborList::set_pair_filter); the mask is this system's ghost mask.
  void set_ghost_pair_filter(bool enabled, bool owned_lower_only = false) {
    nlist_.set_pair_filter(enabled ? &is_ghost_ : nullptr, owned_lower_only);
  }

  /// Snapshot one particle into the flat exchange record format.
  ParticleRecord particle_record(std::size_t i) const;
  /// Replace the whole local population from exchange records (migration
  /// merge, halo rebuild, scatter). Records must already be in the desired
  /// storage order — the exchange layer keeps them sorted by gid so local
  /// index order equals gid order on every rank. Invalidates the neighbor
  /// list and rebuilds the gid map; does not touch next_gid_.
  void reset_particles(const std::vector<ParticleRecord>& recs);

  void add_module(std::shared_ptr<ForceModule> m) { modules_.push_back(std::move(m)); }
  const std::vector<std::shared_ptr<ForceModule>>& modules() const { return modules_; }

  /// Per-particle external force (body force / pressure gradient).
  /// Setup-time configuration, evaluated outside the pair hot loop.
  // lint: std-function-ok (setup-time callback, not a pair-loop parameter)
  using BodyForceFn = std::function<Vec3(const Vec3& pos, Species s)>;
  void set_body_force(BodyForceFn f) { body_force_ = std::move(f); }

  // --- dynamics ---
  /// Recompute frc_ from scratch (pair + exchange hook + wall + body +
  /// modules).
  void compute_forces();
  /// One modified-velocity-Verlet step (incl. wall reflection, wrapping).
  void step();
  std::uint64_t step_count() const { return step_; }
  void set_step_count(std::uint64_t s) { step_ = s; }
  double time() const { return static_cast<double>(step_) * prm_.dt; }

  // --- diagnostics (owned particles only) ---
  double kinetic_temperature() const;
  Vec3 total_momentum() const;
  /// Number density of a species over the whole fluid volume estimate.
  std::size_t count_species(Species s) const;

  /// Minimum-image displacement a -> b under the box periodicity.
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// The engine's persistent RNG (used by fill(); exposed so restart can
  /// capture and restore the exact engine state).
  std::mt19937& rng() { return rng_; }
  const std::mt19937& rng() const { return rng_; }

  /// Checkpoint the full particle state: step counter, positions/velocities,
  /// current and previous forces (the modified-velocity-Verlet half-step
  /// memory), species, frozen flags, global IDs + allocation cursor, the
  /// ghost mask, and the RNG engine — everything needed for a
  /// bitwise-identical restart. The Verlet list, the gid lookup map and the
  /// integrator's prediction scratch are rebuilt on demand and deliberately
  /// not serialised (restart trajectories stay bitwise identical
  /// regardless; see docs/PERF.md). Modules serialise separately.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

  // --- pair iteration -----------------------------------------------------
  //
  // The hot path takes a template parameter so the per-pair kernel inlines
  // (a std::function here costs an indirect call per pair; the repo lint
  // forbids reintroducing one).

  /// Loop over all interacting pairs (r < rc) via the Verlet neighbor list;
  /// fn gets (i, j, dr = xj - xi minimum image, r). Reuses the list while
  /// the skin criterion holds, rebuilds otherwise.
  template <class Fn>
  void for_each_pair(Fn&& fn) {
    ensure_neighbors();
    nlist_.for_each(pos_, std::forward<Fn>(fn));
  }

  /// Legacy pre-Verlet pair walk: rebuilds the rc-sized cell grid on every
  /// call and enumerates via the half stencil. Kept as the baseline for
  /// bench/extra_dpd_pairs and the equivalence tests.
  template <class Fn>
  void for_each_pair_cellwalk(Fn&& fn) {
    build_cells();
    const double rc2 = prm_.rc * prm_.rc;
    const bool degenerate = (prm_.periodic[0] && ncx_ < 3) || (prm_.periodic[1] && ncy_ < 3) ||
                            (prm_.periodic[2] && ncz_ < 3);
    if (degenerate) {
      for_each_pair_direct(std::forward<Fn>(fn));
      return;
    }
    auto cell_of = [this](int cx, int cy, int cz) -> long {
      auto adjust = [](int c, int n, bool per) -> int {
        if (c < 0) return per ? c + n : -1;
        if (c >= n) return per ? c - n : -1;
        return c;
      };
      cx = adjust(cx, ncx_, prm_.periodic[0]);
      cy = adjust(cy, ncy_, prm_.periodic[1]);
      cz = adjust(cz, ncz_, prm_.periodic[2]);
      if (cx < 0 || cy < 0 || cz < 0) return -1;
      return (static_cast<long>(cz) * ncy_ + cy) * ncx_ + cx;
    };
    auto visit = [&](long i, long j) {
      const auto ii = static_cast<std::size_t>(i), jj = static_cast<std::size_t>(j);
      const Vec3 dr = min_image(pos_[ii], pos_[jj]);
      const double r2 = dr.norm2();
      if (r2 < rc2 && r2 > 1e-20)
        fn(static_cast<std::size_t>(i), static_cast<std::size_t>(j), dr, std::sqrt(r2));
    };
    for (int cz = 0; cz < ncz_; ++cz)
      for (int cy = 0; cy < ncy_; ++cy)
        for (int cx = 0; cx < ncx_; ++cx) {
          const long c = cell_of(cx, cy, cz);
          for (long i = cell_head_[static_cast<std::size_t>(c)]; i >= 0;
               i = cell_next_[static_cast<std::size_t>(i)])
            for (long j = cell_next_[static_cast<std::size_t>(i)]; j >= 0;
                 j = cell_next_[static_cast<std::size_t>(j)])
              visit(i, j);
          for (const auto& o : kHalfStencil) {
            const long c2 = cell_of(cx + o[0], cy + o[1], cz + o[2]);
            if (c2 < 0 || c2 == c) continue;
            for (long i = cell_head_[static_cast<std::size_t>(c)]; i >= 0;
                 i = cell_next_[static_cast<std::size_t>(i)])
              for (long j = cell_head_[static_cast<std::size_t>(c2)]; j >= 0;
                   j = cell_next_[static_cast<std::size_t>(j)])
                visit(i, j);
          }
        }
  }

  /// Direct O(N^2) pair enumeration — the reference the fast paths are
  /// validated against in tests/neighbor_test.cpp.
  template <class Fn>
  void for_each_pair_direct(Fn&& fn) const {
    const double rc2 = prm_.rc * prm_.rc;
    for (std::size_t i = 0; i < pos_.size(); ++i)
      for (std::size_t j = i + 1; j < pos_.size(); ++j) {
        const Vec3 dr = min_image(pos_[i], pos_[j]);
        const double r2 = dr.norm2();
        if (r2 < rc2 && r2 > 1e-20) fn(i, j, dr, std::sqrt(r2));
      }
  }

  /// Bring the Verlet list / cell grid up to date with the current
  /// positions (no-op while the skin criterion holds).
  void ensure_neighbors() { nlist_.ensure(pos_); }

  /// Visit every particle within `cutoff` of point `p` via the neighbor
  /// grid: fn(j, dr = xj - p minimum image, r2). Call ensure_neighbors()
  /// first when positions may have drifted.
  template <class Fn>
  void query_neighbors(const Vec3& p, double cutoff, Fn&& fn) const {
    nlist_.query(pos_, p, cutoff, std::forward<Fn>(fn));
  }

  /// The neighbor-list engine (rebuild/reuse stats for benches and tests).
  const NeighborList& neighbor_list() const { return nlist_; }

private:
  void build_cells();
  void wrap(Vec3& p) const;
  void reflect_walls(std::size_t i);
  void pair_forces();
  /// Gather + SIMD kernel for one CSR neighbor row: fills r2/fx/fy/fz for
  /// the run [lo, lo+m) without touching frc_ (the caller scatters). Both
  /// pair passes share this so their per-pair arithmetic is identical.
  void pair_row(std::size_t i, std::size_t lo, std::size_t m, double inv_rc, double inv_sqrt_dt,
                double* r2_out, double* fx_out, double* fy_out, double* fz_out);
  /// Split-phase pair pass driving ExchangeHook::finish_refresh: interior
  /// rows (owned-only runs) compute into staged lanes while the halo lanes
  /// fly, boundary rows after completion, then one scatter replay in
  /// canonical CSR row order keeps the accumulation order — and hence the
  /// trajectory — bitwise equal to the monolithic pass.
  void pair_forces_overlapped();
  /// Mark rows whose full neighbor run touches only owned particles
  /// (cached per neighbor-list rebuild).
  void classify_rows();
  void rebuild_gid_map();

  static constexpr int kHalfStencil[13][3] = {{1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},
                                              {1, -1, 0}, {1, 0, 1},  {1, 0, -1}, {0, 1, 1},
                                              {0, 1, -1}, {1, 1, 1},  {1, 1, -1}, {1, -1, 1},
                                              {1, -1, -1}};

  // analyze: no-checkpoint (constructor configuration, re-supplied by the driver)
  DpdParams prm_;
  // analyze: no-checkpoint (geometry is configuration, re-supplied by the driver)
  std::shared_ptr<Geometry> geom_;

  SoA3 pos_, vel_, frc_, frc_old_;
  std::vector<Species> species_;
  std::vector<char> frozen_;
  std::vector<std::uint32_t> gid_;
  std::vector<char> is_ghost_;
  std::uint32_t next_gid_ = 0;
  // analyze: no-checkpoint (derived lookup, rebuilt from gid_ on load)
  std::unordered_map<std::uint32_t, std::uint32_t> gid_to_local_;
  // analyze: no-checkpoint (borrowed runtime wiring, re-installed by the driver)
  ExchangeHook* exchange_ = nullptr;
  // analyze: no-checkpoint (modules checkpoint separately via the coordinator)
  std::vector<std::shared_ptr<ForceModule>> modules_;
  // analyze: no-checkpoint (callback configuration, re-established by the driver)
  BodyForceFn body_force_;

  // Verlet neighbor list (the hot-path pair source); load_state only
  // invalidates it so the first post-restart step rebuilds from pos_.
  // analyze: no-checkpoint (derived cache, rebuilt on demand from pos_)
  NeighborList nlist_;

  // per-species-pair coefficient tables, hoisted out of the pair loop:
  // a, gamma, and sigma = sqrt(2 gamma kBT), row-major [si * kNumSpecies + sj]
  // analyze: no-checkpoint (derived from prm_ in the constructor)
  std::array<double, kNumSpecies * kNumSpecies> a_tab_{}, g_tab_{}, sig_tab_{};

  // legacy rc-sized cell grid (for_each_pair_cellwalk baseline only)
  // analyze: no-checkpoint (rebuilt every cell walk from pos_)
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
  // analyze: no-checkpoint (rebuilt every cell walk from pos_)
  std::vector<long> cell_head_;
  // analyze: no-checkpoint (rebuilt every cell walk from pos_)
  std::vector<long> cell_next_;

  // reusable scratch: predicted velocities (integrator) and the gathered
  // per-run pair batch handed to la::simd::dpd_pair_forces. Dead between
  // calls — never checkpointed.
  // analyze: no-checkpoint (integrator scratch, recomputed within every step)
  SoA3 v_pred_;
  struct PairBatch {
    std::vector<double> dx, dy, dz, r2, dvx, dvy, dvz, zeta, a, g, sig, fx, fy, fz;
    void resize(std::size_t m);
  };
  // analyze: no-checkpoint (pair-loop scratch, dead between force passes)
  PairBatch batch_;

  // Overlapped pair pass state: which CSR rows touch only owned particles
  // (cached per neighbor-list rebuild) and the staged per-pair kernel
  // outputs that the canonical-order scatter replay consumes.
  // analyze: no-checkpoint (derived from the neighbor list, reclassified per rebuild)
  std::vector<char> row_interior_;
  // analyze: no-checkpoint (cache key: nlist_.rebuilds() at classification time)
  std::uint64_t row_class_rebuilds_ = ~std::uint64_t{0};
  struct PairStage {
    std::vector<double> r2, fx, fy, fz;
  };
  // analyze: no-checkpoint (overlap staging scratch, dead between force passes)
  PairStage stage_;

  std::uint64_t step_ = 0;
  std::mt19937 rng_{0xD1CEu};
};

}  // namespace dpd
