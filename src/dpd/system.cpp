#include "dpd/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/simd.hpp"
#include "resilience/blob.hpp"
#include "telemetry/registry.hpp"

namespace dpd {

DpdSystem::DpdSystem(const DpdParams& prm, std::shared_ptr<Geometry> geom)
    : prm_(prm), geom_(std::move(geom)) {
  if (prm.rc <= 0.0 || prm.dt <= 0.0 || prm.skin < 0.0)
    throw std::invalid_argument("DpdSystem: rc/dt/skin");
  if (!geom_) geom_ = std::make_shared<NoWalls>();
  nlist_.configure({prm_.box, prm_.periodic, prm_.rc, prm_.skin});
  // hoist the per-species-pair coefficients (incl. sigma = sqrt(2 gamma kBT))
  // out of the pair loop once and for all
  for (int si = 0; si < kNumSpecies; ++si)
    for (int sj = 0; sj < kNumSpecies; ++sj) {
      const auto k = static_cast<std::size_t>(si * kNumSpecies + sj);
      a_tab_[k] = prm_.a[static_cast<std::size_t>(si)][static_cast<std::size_t>(sj)];
      g_tab_[k] = prm_.gamma[static_cast<std::size_t>(si)][static_cast<std::size_t>(sj)];
      sig_tab_[k] = std::sqrt(2.0 * g_tab_[k] * prm_.kBT);
    }
}

void DpdSystem::PairBatch::resize(std::size_t m) {
  dx.resize(m);
  dy.resize(m);
  dz.resize(m);
  r2.resize(m);
  dvx.resize(m);
  dvy.resize(m);
  dvz.resize(m);
  zeta.resize(m);
  a.resize(m);
  g.resize(m);
  sig.resize(m);
  fx.resize(m);
  fy.resize(m);
  fz.resize(m);
}

std::size_t DpdSystem::add_particle(const Vec3& pos, const Vec3& vel, Species s) {
  if (distributed())
    throw std::logic_error("DpdSystem: add_particle while decomposed (unsupported)");
  pos_.push_back(pos);
  vel_.push_back(vel);
  frc_.push_back({});
  frc_old_.push_back({});
  species_.push_back(s);
  frozen_.push_back(0);
  gid_.push_back(next_gid_);
  is_ghost_.push_back(0);
  gid_to_local_[next_gid_] = static_cast<std::uint32_t>(pos_.size() - 1);
  ++next_gid_;
  nlist_.invalidate();
  return pos_.size() - 1;
}

std::size_t DpdSystem::fill(double density, Species s, unsigned seed, double margin) {
  rng_.seed(seed);
  std::mt19937& rng = rng_;
  std::uniform_real_distribution<double> ux(0.0, prm_.box.x), uy(0.0, prm_.box.y),
      uz(0.0, prm_.box.z);
  std::normal_distribution<double> mb(0.0, std::sqrt(prm_.kBT));
  // Rejection-sample the fluid region; estimate its volume on the fly so the
  // target count matches `density` over the actual fluid volume.
  const std::size_t probes = 20000;
  std::size_t hits = 0;
  for (std::size_t k = 0; k < probes; ++k) {
    Vec3 p{ux(rng), uy(rng), uz(rng)};
    if (geom_->sdf(p) > margin) ++hits;
  }
  const double vol = prm_.box.x * prm_.box.y * prm_.box.z * static_cast<double>(hits) /
                     static_cast<double>(probes);
  const auto target = static_cast<std::size_t>(density * vol);
  std::size_t placed = 0;
  while (placed < target) {
    Vec3 p{ux(rng), uy(rng), uz(rng)};
    if (geom_->sdf(p) <= margin) continue;
    add_particle(p, {mb(rng), mb(rng), mb(rng)}, s);
    ++placed;
  }
  return placed;
}

void DpdSystem::remove_particles(std::vector<std::size_t> idx) {
  if (idx.empty()) return;
  if (distributed())
    throw std::logic_error("DpdSystem: remove_particles while decomposed (unsupported)");
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  const std::size_t n = pos_.size();
  std::vector<char> dead(n, 0);
  std::vector<std::uint32_t> dead_gids;
  dead_gids.reserve(idx.size());
  for (std::size_t i : idx) {
    dead[i] = 1;
    dead_gids.push_back(gid_[i]);
  }
  std::vector<long> new_index(n, -1);
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    new_index[i] = static_cast<long>(w);
    if (w != i) {
      pos_[w] = pos_[i];
      vel_[w] = vel_[i];
      frc_[w] = frc_[i];
      frc_old_[w] = frc_old_[i];
      species_[w] = species_[i];
      frozen_[w] = frozen_[i];
      gid_[w] = gid_[i];
      is_ghost_[w] = is_ghost_[i];
    }
    ++w;
  }
  pos_.resize(w);
  vel_.resize(w);
  frc_.resize(w);
  frc_old_.resize(w);
  species_.resize(w);
  frozen_.resize(w);
  gid_.resize(w);
  is_ghost_.resize(w);
  rebuild_gid_map();
  nlist_.on_remap(new_index);
  for (auto& m : modules_) {
    m->on_remap(new_index);
    m->on_remove_gids(dead_gids);
  }
}

void DpdSystem::rebuild_gid_map() {
  gid_to_local_.clear();
  gid_to_local_.reserve(gid_.size());
  for (std::size_t i = 0; i < gid_.size(); ++i)
    gid_to_local_[gid_[i]] = static_cast<std::uint32_t>(i);
}

std::size_t DpdSystem::owned_count() const {
  std::size_t c = 0;
  for (char g : is_ghost_)
    if (!g) ++c;
  return c;
}

ParticleRecord DpdSystem::particle_record(std::size_t i) const {
  ParticleRecord r;
  r.gid = gid_[i];
  r.species = static_cast<std::uint8_t>(species_[i]);
  r.frozen = static_cast<std::uint8_t>(frozen_[i]);
  r.ghost = static_cast<std::uint8_t>(is_ghost_[i]);
  r.pos = pos_[i];
  r.vel = vel_[i];
  // the integrator scratch may not be sized yet (before the first step)
  r.aux_vel = i < v_pred_.size() ? Vec3(v_pred_[i]) : Vec3{};
  r.frc_old = frc_old_[i];
  return r;
}

void DpdSystem::reset_particles(const std::vector<ParticleRecord>& recs) {
  const std::size_t n = recs.size();
  pos_.resize(n);
  vel_.resize(n);
  frc_.resize(n);
  frc_old_.resize(n);
  v_pred_.resize(n);
  species_.resize(n);
  frozen_.resize(n);
  gid_.resize(n);
  is_ghost_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ParticleRecord& r = recs[i];
    pos_.set(i, r.pos);
    vel_.set(i, r.vel);
    v_pred_.set(i, r.aux_vel);
    frc_.set(i, {});
    frc_old_.set(i, r.frc_old);
    species_[i] = static_cast<Species>(r.species);
    frozen_[i] = static_cast<char>(r.frozen);
    gid_[i] = r.gid;
    is_ghost_[i] = static_cast<char>(r.ghost);
  }
  rebuild_gid_map();
  nlist_.invalidate();
}

void DpdSystem::wrap(Vec3& p) const {
  auto wrap1 = [](double v, double L) {
    v = std::fmod(v, L);
    return v < 0.0 ? v + L : v;
  };
  if (prm_.periodic[0]) p.x = wrap1(p.x, prm_.box.x);
  if (prm_.periodic[1]) p.y = wrap1(p.y, prm_.box.y);
  if (prm_.periodic[2]) p.z = wrap1(p.z, prm_.box.z);
}

Vec3 DpdSystem::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = b - a;
  auto mi = [](double v, double L) {
    if (v > 0.5 * L) return v - L;
    if (v < -0.5 * L) return v + L;
    return v;
  };
  if (prm_.periodic[0]) d.x = mi(d.x, prm_.box.x);
  if (prm_.periodic[1]) d.y = mi(d.y, prm_.box.y);
  if (prm_.periodic[2]) d.z = mi(d.z, prm_.box.z);
  return d;
}

void DpdSystem::build_cells() {
  telemetry::ScopedPhase phase("dpd.cells");
  ncx_ = std::max(1, static_cast<int>(prm_.box.x / prm_.rc));
  ncy_ = std::max(1, static_cast<int>(prm_.box.y / prm_.rc));
  ncz_ = std::max(1, static_cast<int>(prm_.box.z / prm_.rc));
  cell_head_.assign(static_cast<std::size_t>(ncx_) * ncy_ * ncz_, -1);
  cell_next_.assign(pos_.size(), -1);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    Vec3 p = pos_[i];
    wrap(p);
    int cx = std::clamp(static_cast<int>(p.x / prm_.box.x * ncx_), 0, ncx_ - 1);
    int cy = std::clamp(static_cast<int>(p.y / prm_.box.y * ncy_), 0, ncy_ - 1);
    int cz = std::clamp(static_cast<int>(p.z / prm_.box.z * ncz_), 0, ncz_ - 1);
    const std::size_t c =
        (static_cast<std::size_t>(cz) * ncy_ + cy) * static_cast<std::size_t>(ncx_) + cx;
    cell_next_[i] = cell_head_[c];
    cell_head_[c] = static_cast<long>(i);
  }
}

void DpdSystem::pair_row(std::size_t i, std::size_t lo, std::size_t m, double inv_rc,
                         double inv_sqrt_dt, double* r2_out, double* fx_out, double* fy_out,
                         double* fz_out) {
  // Gather particle i's neighbor run into flat lanes (minimum-image
  // separation, relative velocity, counter-based noise, hoisted
  // coefficients) and hand it to the SIMD kernel. The input lanes live in
  // batch_ (the caller must have called batch_.resize(m)); r2 and the
  // kernel's per-pair forces go through the out pointers so the monolithic
  // pass can target batch_ while the overlapped pass stages them at the
  // row's CSR offset. The noise is keyed on *global* IDs, so a pair's
  // random stream is invariant to index compaction and to which rank
  // computes it.
  const auto& nbr = nlist_.neighbors();
  const double* px = pos_.xs().data();
  const double* py = pos_.ys().data();
  const double* pz = pos_.zs().data();
  const double* ux = vel_.xs().data();
  const double* uy = vel_.ys().data();
  const double* uz = vel_.zs().data();
  const double bx = prm_.box.x, by = prm_.box.y, bz = prm_.box.z;
  const bool perx = prm_.periodic[0], pery = prm_.periodic[1], perz = prm_.periodic[2];
  auto mi = [](double v, double L) {
    if (v > 0.5 * L) return v - L;
    if (v < -0.5 * L) return v + L;
    return v;
  };
  auto& b = batch_;
  const Species si = species_[i];
  const double* a_row = &a_tab_[static_cast<std::size_t>(si) * kNumSpecies];
  const double* g_row = &g_tab_[static_cast<std::size_t>(si) * kNumSpecies];
  const double* s_row = &sig_tab_[static_cast<std::size_t>(si) * kNumSpecies];
  const double xi = px[i], yi = py[i], zi = pz[i];
  const double uxi = ux[i], uyi = uy[i], uzi = uz[i];
  const std::uint32_t gi = gid_[i];
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t j = nbr[lo + k];
    double dx = px[j] - xi;
    double dy = py[j] - yi;
    double dz = pz[j] - zi;
    if (perx) dx = mi(dx, bx);
    if (pery) dy = mi(dy, by);
    if (perz) dz = mi(dz, bz);
    b.dx[k] = dx;
    b.dy[k] = dy;
    b.dz[k] = dz;
    r2_out[k] = dx * dx + dy * dy + dz * dz;
    b.dvx[k] = ux[j] - uxi;
    b.dvy[k] = uy[j] - uyi;
    b.dvz[k] = uz[j] - uzi;
    b.zeta[k] = pair_gaussian_like(step_, gi, gid_[j]);
    const Species sj = species_[j];
    b.a[k] = a_row[sj];
    b.g[k] = g_row[sj];
    b.sig[k] = s_row[sj];
  }
  // f = (dx,dy,dz) fmag / r is the force on j; i receives -f (the kernel
  // header documents the lane math; out-of-range lanes are discarded).
  la::simd::dpd_pair_forces(m, inv_rc, inv_sqrt_dt, b.dx.data(), b.dy.data(), b.dz.data(), r2_out,
                            b.dvx.data(), b.dvy.data(), b.dvz.data(), b.zeta.data(), b.a.data(),
                            b.g.data(), b.sig.data(), fx_out, fy_out, fz_out);
}

void DpdSystem::pair_forces() {
  // Batched Groot-Warren pair forces over the Verlet list: per particle i,
  // gather + kernel (pair_row), then scatter only the in-range lanes.
  // Skipping out-of-range lanes entirely — rather than zeroing them — keeps
  // the floating-point accumulation order a function of the particle state
  // alone, independent of when the list was built (bitwise restarts).
  if (exchange_ && exchange_->overlap_pending()) {
    pair_forces_overlapped();
    return;
  }
  ensure_neighbors();
  const double rc2 = prm_.rc * prm_.rc;
  const double inv_rc = 1.0 / prm_.rc;
  const double inv_sqrt_dt = 1.0 / std::sqrt(prm_.dt);
  const auto& offs = nlist_.offsets();
  const auto& nbr = nlist_.neighbors();
  const std::size_t n = pos_.size();
  double* gx = frc_.xs().data();
  double* gy = frc_.ys().data();
  double* gz = frc_.zs().data();
  auto& b = batch_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = offs[i], hi = offs[i + 1];
    const std::size_t m = hi - lo;
    if (m == 0) continue;
    b.resize(m);
    pair_row(i, lo, m, inv_rc, inv_sqrt_dt, b.r2.data(), b.fx.data(), b.fy.data(), b.fz.data());
    for (std::size_t k = 0; k < m; ++k) {
      if (b.r2[k] >= rc2 || b.r2[k] <= 1e-20) continue;
      const std::size_t j = nbr[lo + k];
      gx[i] -= b.fx[k];
      gy[i] -= b.fy[k];
      gz[i] -= b.fz[k];
      gx[j] += b.fx[k];
      gy[j] += b.fy[k];
      gz[j] += b.fz[k];
    }
  }
}

void DpdSystem::classify_rows() {
  // A CSR row is *interior* when neither i nor any neighbor in its run is a
  // ghost: every lane then reads only owned (locally integrated, always
  // fresh) pos/vel, so the row can be computed while a split-phase halo
  // update is still in flight. The classification only depends on the list
  // topology and the ghost mask — both fixed between rebuilds — so it is
  // cached against nlist_.rebuilds().
  const auto& offs = nlist_.offsets();
  const auto& nbr = nlist_.neighbors();
  const std::size_t n = pos_.size();
  row_interior_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_ghost_[i]) {
      row_interior_[i] = 0;
      continue;
    }
    for (std::size_t k = offs[i]; k < offs[i + 1]; ++k)
      if (is_ghost_[nbr[k]]) {
        row_interior_[i] = 0;
        break;
      }
  }
  row_class_rebuilds_ = nlist_.rebuilds();
}

void DpdSystem::pair_forces_overlapped() {
  // Split-phase pair pass (comm/compute overlap): interior rows are
  // gathered and run through the kernel while the halo lanes are in flight,
  // the exchange is completed, then the boundary rows run against the fresh
  // ghost pos/vel. Per-pair kernel outputs are *staged* at each row's CSR
  // offset and scattered afterwards in one replay over rows i = 0..n-1 —
  // exactly the monolithic pass's accumulation order — so the computed
  // forces, and hence the trajectory, are bitwise identical to the
  // non-overlapped run (docs/PERF.md "Overlapped halos").
  ensure_neighbors();
  if (row_class_rebuilds_ != nlist_.rebuilds() || row_interior_.size() != pos_.size())
    classify_rows();
  const double rc2 = prm_.rc * prm_.rc;
  const double inv_rc = 1.0 / prm_.rc;
  const double inv_sqrt_dt = 1.0 / std::sqrt(prm_.dt);
  const auto& offs = nlist_.offsets();
  const auto& nbr = nlist_.neighbors();
  const std::size_t n = pos_.size();
  const std::size_t total = nlist_.pair_count();
  stage_.r2.resize(total);
  stage_.fx.resize(total);
  stage_.fy.resize(total);
  stage_.fz.resize(total);
  std::size_t interior_rows = 0, boundary_rows = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = offs[i], m = offs[i + 1] - lo;
    if (m == 0) continue;
    if (!row_interior_[i]) {
      ++boundary_rows;
      continue;
    }
    ++interior_rows;
    batch_.resize(m);
    pair_row(i, lo, m, inv_rc, inv_sqrt_dt, stage_.r2.data() + lo, stage_.fx.data() + lo,
             stage_.fy.data() + lo, stage_.fz.data() + lo);
  }
  // complete the in-flight halo update; ghost slots are fresh from here on
  exchange_->finish_refresh(*this);
  for (std::size_t i = 0; i < n; ++i) {
    if (row_interior_[i]) continue;
    const std::size_t lo = offs[i], m = offs[i + 1] - lo;
    if (m == 0) continue;
    batch_.resize(m);
    pair_row(i, lo, m, inv_rc, inv_sqrt_dt, stage_.r2.data() + lo, stage_.fx.data() + lo,
             stage_.fy.data() + lo, stage_.fz.data() + lo);
  }
  double* gx = frc_.xs().data();
  double* gy = frc_.ys().data();
  double* gz = frc_.zs().data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = offs[i]; k < offs[i + 1]; ++k) {
      if (stage_.r2[k] >= rc2 || stage_.r2[k] <= 1e-20) continue;
      const std::size_t j = nbr[k];
      gx[i] -= stage_.fx[k];
      gy[i] -= stage_.fy[k];
      gz[i] -= stage_.fz[k];
      gx[j] += stage_.fx[k];
      gy[j] += stage_.fy[k];
      gz[j] += stage_.fz[k];
    }
  }
  telemetry::count("dpd.rows.interior", static_cast<double>(interior_rows));
  telemetry::count("dpd.rows.boundary", static_cast<double>(boundary_rows));
}

void DpdSystem::compute_forces() {
  telemetry::ScopedPhase phase("dpd.forces");
  const std::size_t n = pos_.size();
  frc_.assign(n, {});
  pair_forces();
  // Reverse-exchange seam: frc_ holds only pair contributions here, so a
  // driver in owned-lower-only mode can ship ghost accumulations to their
  // owners without double-counting the per-particle terms below.
  if (exchange_) exchange_->after_pairs(*this);
  // effective wall boundary force: normal repulsion + dissipative friction
  // + the fluctuation-dissipation-matched random kicks (a particle wall
  // would deliver both; omitting the random part cools the near-wall fluid)
  const double sig_w = std::sqrt(2.0 * prm_.wall_gamma * prm_.kBT);
  const double inv_sqrt_dt_w = 1.0 / std::sqrt(prm_.dt);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 p = pos_[i];
    const double d = geom_->sdf(p);
    if (d < prm_.rc) {
      const double w = 1.0 - std::max(d, 0.0) / prm_.rc;
      frc_[i] += geom_->normal(p) * (prm_.wall_force * w * w);
      frc_[i] -= vel_[i] * (prm_.wall_gamma * w * w);
      const std::uint32_t gi = gid_[i];
      frc_[i] += Vec3{pair_gaussian_like(step_ * 3 + 0, gi, gi),
                      pair_gaussian_like(step_ * 3 + 1, gi, gi),
                      pair_gaussian_like(step_ * 3 + 2, gi, gi)} *
                 (sig_w * w * inv_sqrt_dt_w);
    }
  }
  if (body_force_)
    for (std::size_t i = 0; i < n; ++i) frc_[i] += body_force_(pos_[i], species_[i]);
  for (auto& m : modules_) m->add_forces(*this);
}

void DpdSystem::reflect_walls(std::size_t i) {
  const double d = geom_->sdf(pos_[i]);
  if (d >= 0.0) return;
  // bounce back: reflect position to the fluid side, reverse velocity
  const Vec3 nrm = geom_->normal(pos_[i]);
  pos_[i] += nrm * (-2.0 * d);
  vel_[i] = vel_[i] * -1.0;
}

void DpdSystem::step() {
  telemetry::ScopedPhase phase("dpd.step");
  const double dt = prm_.dt;
  if (step_ == 0) {
    if (exchange_) exchange_->refresh(*this);
    compute_forces();
  }

  // Groot-Warren modified velocity-Verlet. v_pred_ is a persistent scratch
  // buffer (reallocating it every step showed up in the step profile);
  // every entry is written before use, so no re-initialisation is needed.
  // Ghost particles are integrated by their owning rank; the exchange hook
  // refreshes their position/velocity images before each force pass.
  const std::size_t n = pos_.size();
  v_pred_.resize(n);
  {
    telemetry::ScopedPhase integrate("dpd.integrate");
    for (std::size_t i = 0; i < n; ++i) {
      if (is_ghost_[i] || frozen_[i]) {
        v_pred_[i] = {};
        continue;
      }
      pos_[i] += vel_[i] * dt + frc_[i] * (0.5 * dt * dt);
      v_pred_[i] = vel_[i] + frc_[i] * (prm_.lambda * dt);
      Vec3 p = pos_[i];
      wrap(p);
      pos_[i] = p;
      reflect_walls(i);
    }
  }
  frc_old_ = frc_;
  // force evaluation at predicted velocities (vel_ holds the prediction
  // between the swaps; the refresh therefore ships predicted velocities to
  // ghosts, which is exactly what the force evaluation needs)
  vel_.swap(v_pred_);
  if (exchange_) exchange_->refresh(*this);
  compute_forces();
  vel_.swap(v_pred_);
  {
    telemetry::ScopedPhase integrate("dpd.integrate");
    // the refresh may have migrated particles: re-read the size
    const std::size_t nn = pos_.size();
    for (std::size_t i = 0; i < nn; ++i) {
      if (is_ghost_[i]) continue;
      if (frozen_[i]) {
        vel_[i] = {};
        continue;
      }
      vel_[i] += (frc_old_[i] + frc_[i]) * (0.5 * dt);
    }
  }
  ++step_;
}

double DpdSystem::kinetic_temperature() const {
  double ke = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (is_ghost_[i] || frozen_[i]) continue;
    ke += vel_[i].norm2();
    ++n;
  }
  if (n == 0) return 0.0;
  return ke / (3.0 * static_cast<double>(n));
}

Vec3 DpdSystem::total_momentum() const {
  Vec3 p{};
  for (std::size_t i = 0; i < pos_.size(); ++i)
    if (!is_ghost_[i] && !frozen_[i]) p += vel_[i];
  return p;
}

std::size_t DpdSystem::count_species(Species s) const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < species_.size(); ++i)
    if (!is_ghost_[i] && species_[i] == s) ++c;
  return c;
}

void DpdSystem::save_state(resilience::BlobWriter& w) const {
  w.pod(step_);
  w.vec(pos_.xs());
  w.vec(pos_.ys());
  w.vec(pos_.zs());
  w.vec(vel_.xs());
  w.vec(vel_.ys());
  w.vec(vel_.zs());
  w.vec(frc_.xs());
  w.vec(frc_.ys());
  w.vec(frc_.zs());
  w.vec(frc_old_.xs());
  w.vec(frc_old_.ys());
  w.vec(frc_old_.zs());
  w.vec(species_);
  w.vec(frozen_);
  w.vec(gid_);
  w.vec(is_ghost_);
  w.pod(next_gid_);
  resilience::put_rng(w, rng_);
}

void DpdSystem::load_state(resilience::BlobReader& r) {
  r.pod(step_);
  pos_.xs() = r.vec<double>();
  pos_.ys() = r.vec<double>();
  pos_.zs() = r.vec<double>();
  vel_.xs() = r.vec<double>();
  vel_.ys() = r.vec<double>();
  vel_.zs() = r.vec<double>();
  frc_.xs() = r.vec<double>();
  frc_.ys() = r.vec<double>();
  frc_.zs() = r.vec<double>();
  frc_old_.xs() = r.vec<double>();
  frc_old_.ys() = r.vec<double>();
  frc_old_.zs() = r.vec<double>();
  species_ = r.vec<Species>();
  frozen_ = r.vec<char>();
  gid_ = r.vec<std::uint32_t>();
  is_ghost_ = r.vec<char>();
  const std::size_t n = pos_.xs().size();
  if (pos_.ys().size() != n || pos_.zs().size() != n || vel_.xs().size() != n ||
      vel_.ys().size() != n || vel_.zs().size() != n || frc_.xs().size() != n ||
      frc_.ys().size() != n || frc_.zs().size() != n || frc_old_.xs().size() != n ||
      frc_old_.ys().size() != n || frc_old_.zs().size() != n || species_.size() != n ||
      frozen_.size() != n || gid_.size() != n || is_ghost_.size() != n)
    throw resilience::CorruptError("DpdSystem: inconsistent array lengths in checkpoint");
  r.pod(next_gid_);
  resilience::get_rng(r, rng_);
  rebuild_gid_map();
  nlist_.invalidate();
}

}  // namespace dpd
