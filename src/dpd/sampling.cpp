#include "dpd/sampling.hpp"

#include "resilience/blob.hpp"

#include <algorithm>

namespace dpd {

FieldSampler::FieldSampler(const DpdSystem& sys, SamplerParams p)
    : prm_(p), box_(sys.params().box) {
  sum_.assign(num_bins(), 0.0);
  count_.assign(num_bins(), 0);
}

void FieldSampler::accumulate(const DpdSystem& sys) {
  const auto& pos = sys.positions();
  const auto& vel = sys.velocities();
  const auto& sp = sys.species();
  const auto& ghost = sys.ghost_mask();
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (ghost[i]) continue;  // owners accumulate; ghosts would double-count
    if (!prm_.all_species && sp[i] != prm_.only_species) continue;
    const int bx = std::clamp(static_cast<int>(pos[i].x / box_.x * prm_.nx), 0, prm_.nx - 1);
    const int by = std::clamp(static_cast<int>(pos[i].y / box_.y * prm_.ny), 0, prm_.ny - 1);
    const int bz = std::clamp(static_cast<int>(pos[i].z / box_.z * prm_.nz), 0, prm_.nz - 1);
    const std::size_t b =
        (static_cast<std::size_t>(bz) * prm_.ny + by) * static_cast<std::size_t>(prm_.nx) + bx;
    const double v = prm_.component == 0 ? vel[i].x : prm_.component == 1 ? vel[i].y : vel[i].z;
    sum_[b] += v;
    count_[b]++;
  }
}

la::Vector FieldSampler::snapshot() {
  la::Vector out(num_bins());
  for (std::size_t b = 0; b < num_bins(); ++b)
    out[b] = count_[b] ? sum_[b] / static_cast<double>(count_[b]) : 0.0;
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(count_.begin(), count_.end(), 0);
  return out;
}

Vec3 FieldSampler::bin_center(std::size_t bin) const {
  const std::size_t bx = bin % static_cast<std::size_t>(prm_.nx);
  const std::size_t by = (bin / static_cast<std::size_t>(prm_.nx)) % static_cast<std::size_t>(prm_.ny);
  const std::size_t bz = bin / (static_cast<std::size_t>(prm_.nx) * prm_.ny);
  return {(static_cast<double>(bx) + 0.5) * box_.x / prm_.nx,
          (static_cast<double>(by) + 0.5) * box_.y / prm_.ny,
          (static_cast<double>(bz) + 0.5) * box_.z / prm_.nz};
}

void FieldSampler::save_state(resilience::BlobWriter& w) const {
  w.vec(sum_);
  w.vec(count_);
}

void FieldSampler::load_state(resilience::BlobReader& r) {
  sum_ = r.vec<double>();
  count_ = r.vec<std::size_t>();
  if (sum_.size() != num_bins() || count_.size() != num_bins())
    throw resilience::CorruptError("FieldSampler: bin count mismatch in checkpoint");
}

}  // namespace dpd
