#include "dpd/neighbor.hpp"

#include <stdexcept>

#include "telemetry/registry.hpp"

namespace dpd {

void NeighborList::configure(const NeighborParams& p) {
  if (p.rc <= 0.0 || p.skin < 0.0) throw std::invalid_argument("NeighborList: rc/skin");
  prm_ = p;
  invalidate();
}

bool NeighborList::ensure(const SoA3& pos) {
  if (valid_ && pos.size() == ref_pos_.size()) {
    // Verlet criterion: the list is a superset of the interacting pairs as
    // long as no particle has moved farther than skin/2 since the build.
    const double lim2 = 0.25 * prm_.skin * prm_.skin;
    bool ok = prm_.skin > 0.0;
    for (std::size_t i = 0; ok && i < pos.size(); ++i)
      if (min_image(ref_pos_[i], pos[i]).norm2() > lim2) ok = false;
    if (ok) {
      ++reuses_;
      telemetry::count("dpd.nlist.reuse");
      return false;
    }
  }
  build(pos);
  valid_ = true;
  ++rebuilds_;
  telemetry::count("dpd.nlist.rebuild");
  return true;
}

void NeighborList::build(const SoA3& pos) {
  telemetry::ScopedPhase phase("dpd.nlist.build");
  const double rcut = prm_.rc + prm_.skin;
  const double rcut2 = rcut * rcut;
  const std::size_t n = pos.size();
  ref_pos_ = pos;
  if (ghost_ && ghost_->size() < n)
    throw std::invalid_argument("NeighborList: pair-filter mask smaller than position array");

  // cell grid with cells of size >= rcut
  ncx_ = std::max(1, static_cast<int>(prm_.box.x / rcut));
  ncy_ = std::max(1, static_cast<int>(prm_.box.y / rcut));
  ncz_ = std::max(1, static_cast<int>(prm_.box.z / rcut));
  csx_ = prm_.box.x / ncx_;
  csy_ = prm_.box.y / ncy_;
  csz_ = prm_.box.z / ncz_;
  cell_head_.assign(static_cast<std::size_t>(ncx_) * ncy_ * ncz_, -1);
  cell_next_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 p = pos[i];
    wrap(p);
    const int cx = cell_coord(p.x, prm_.box.x, ncx_);
    const int cy = cell_coord(p.y, prm_.box.y, ncy_);
    const int cz = cell_coord(p.z, prm_.box.z, ncz_);
    const std::size_t c =
        (static_cast<std::size_t>(cz) * ncy_ + cy) * static_cast<std::size_t>(ncx_) + cx;
    cell_next_[i] = cell_head_[c];
    cell_head_[c] = static_cast<long>(i);
  }

  // A periodic dimension with fewer than 3 cells breaks the half-stencil's
  // visit-each-pair-once guarantee; enumerate directly for such tiny boxes
  // (the grid stays usable for point queries, which dedupe cells).
  degenerate_ = (prm_.periodic[0] && ncx_ < 3) || (prm_.periodic[1] && ncy_ < 3) ||
                (prm_.periodic[2] && ncz_ < 3);

  // Decomposition filter: drop pairs this rank must not compute. With only
  // the mask set, both-ghost pairs go (neither member is owned here); with
  // owned_lower_only the lower-index member must be owned (reverse-exchange
  // mode computes each cross-face pair on exactly one rank).
  auto keep = [this](std::uint32_t a, std::uint32_t b) {
    if (!ghost_) return true;
    const bool ga = (*ghost_)[a] != 0, gb = (*ghost_)[b] != 0;
    if (owned_lower_only_) return !ga;
    return !(ga && gb);
  };

  auto& pairs = pair_scratch_;
  pairs.clear();
  if (degenerate_) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto a = static_cast<std::uint32_t>(i), b = static_cast<std::uint32_t>(j);
        if (keep(a, b) && min_image(pos[i], pos[j]).norm2() < rcut2) pairs.emplace_back(a, b);
      }
  } else {
    // half stencil of neighbour cell offsets (13 + same cell)
    static constexpr int kOff[13][3] = {{1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},
                                        {1, -1, 0}, {1, 0, 1},  {1, 0, -1}, {0, 1, 1},
                                        {0, 1, -1}, {1, 1, 1},  {1, 1, -1}, {1, -1, 1},
                                        {1, -1, -1}};
    auto cell_of = [this](int cx, int cy, int cz) -> long {
      auto adjust = [](int c, int nc, bool per) -> int {
        if (c < 0) return per ? c + nc : -1;
        if (c >= nc) return per ? c - nc : -1;
        return c;
      };
      cx = adjust(cx, ncx_, prm_.periodic[0]);
      cy = adjust(cy, ncy_, prm_.periodic[1]);
      cz = adjust(cz, ncz_, prm_.periodic[2]);
      if (cx < 0 || cy < 0 || cz < 0) return -1;
      return (static_cast<long>(cz) * ncy_ + cy) * ncx_ + cx;
    };
    auto push = [&](long i, long j) {
      const auto ii = static_cast<std::size_t>(i), jj = static_cast<std::size_t>(j);
      const auto a = static_cast<std::uint32_t>(std::min(i, j));
      const auto b = static_cast<std::uint32_t>(std::max(i, j));
      if (keep(a, b) && min_image(pos[ii], pos[jj]).norm2() < rcut2) pairs.emplace_back(a, b);
    };
    for (int cz = 0; cz < ncz_; ++cz)
      for (int cy = 0; cy < ncy_; ++cy)
        for (int cx = 0; cx < ncx_; ++cx) {
          const long c = cell_of(cx, cy, cz);
          for (long i = cell_head_[static_cast<std::size_t>(c)]; i >= 0;
               i = cell_next_[static_cast<std::size_t>(i)])
            for (long j = cell_next_[static_cast<std::size_t>(i)]; j >= 0;
                 j = cell_next_[static_cast<std::size_t>(j)])
              push(i, j);
          for (const auto& o : kOff) {
            const long c2 = cell_of(cx + o[0], cy + o[1], cz + o[2]);
            if (c2 < 0 || c2 == c) continue;
            for (long i = cell_head_[static_cast<std::size_t>(c)]; i >= 0;
                 i = cell_next_[static_cast<std::size_t>(i)])
              for (long j = cell_head_[static_cast<std::size_t>(c2)]; j >= 0;
                   j = cell_next_[static_cast<std::size_t>(j)])
                push(i, j);
          }
        }
  }

  // CSR by lower index, each run sorted ascending: the canonical enumeration
  // order that makes force accumulation independent of the build moment.
  offsets_.assign(n + 1, 0);
  for (const auto& pr : pairs) ++offsets_[pr.first + 1];
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(pairs.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& pr : pairs) neighbors_[cursor[pr.first]++] = pr.second;
  for (std::size_t i = 0; i < n; ++i)
    std::sort(neighbors_.begin() + static_cast<long>(offsets_[i]),
              neighbors_.begin() + static_cast<long>(offsets_[i + 1]));
}

}  // namespace dpd
