#include "dpd/buffers.hpp"

namespace dpd {

void BufferZones::set_shared_target(const std::function<Vec3(const Vec3&)>& field) {
  for (auto& w : windows_) w.target = field;
}

void BufferZones::apply(DpdSystem& sys) const {
  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  for (const auto& w : windows_) {
    if (!w.target) continue;
    for (std::size_t i = 0; i < sys.size(); ++i) {
      if (sys.frozen()[i] || !inside(w, pos[i])) continue;
      const Vec3 vt = w.target(pos[i]);
      vel[i] += (vt - vel[i]) * w.relax;
    }
  }
}

std::size_t BufferZones::count_inside(const DpdSystem& sys, std::size_t k) const {
  const auto& w = windows_[k];
  std::size_t c = 0;
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (inside(w, sys.positions()[i])) ++c;
  return c;
}

double BufferZones::mismatch(const DpdSystem& sys, std::size_t k) const {
  const auto& w = windows_[k];
  if (!w.target) return 0.0;
  double acc = 0.0;
  std::size_t c = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (!inside(w, sys.positions()[i])) continue;
    acc += (sys.velocities()[i] - w.target(sys.positions()[i])).norm();
    ++c;
  }
  return c ? acc / static_cast<double>(c) : 0.0;
}

}  // namespace dpd
