#pragma once
// Multi-window velocity buffers: the paper's atomistic subdomain interfaces
// the continuum at *five* planar surfaces Gamma_I k (Sec. 4.2), each
// carrying its own imposed velocity. BufferZones generalises the single
// inflow buffer of FlowBc: any number of box-shaped relaxation windows,
// each steering the local particle velocities towards a callback field
// (refreshed by the coupler every exchange).

#include <functional>
#include <string>
#include <vector>

#include "dpd/system.hpp"

namespace dpd {

struct BufferWindow {
  std::string name;             ///< diagnostic label (e.g. "Gamma_I1")
  Vec3 lo{}, hi{};              ///< axis-aligned window bounds
  double relax = 0.2;           ///< per-step relaxation factor
  /// Imposed velocity field (refreshed by the coupler; per-particle use).
  // lint: std-function-ok (coupling callback, evaluated per particle not per pair)
  std::function<Vec3(const Vec3&)> target;
};

class BufferZones {
public:
  void add_window(BufferWindow w) { windows_.push_back(std::move(w)); }
  std::size_t size() const { return windows_.size(); }
  BufferWindow& window(std::size_t k) { return windows_[k]; }

  /// Replace every window's target with velocities drawn from one shared
  /// field (the coupler's interpolated continuum solution).
  // lint: std-function-ok (setup-time setter, not a pair-loop parameter)
  void set_shared_target(const std::function<Vec3(const Vec3&)>& field);

  /// Apply all windows to the system (call once per DPD step).
  void apply(DpdSystem& sys) const;

  /// Particles currently inside window k (diagnostics / tests).
  std::size_t count_inside(const DpdSystem& sys, std::size_t k) const;

  /// Mean velocity error |v - target| over window k's particles.
  double mismatch(const DpdSystem& sys, std::size_t k) const;

private:
  static bool inside(const BufferWindow& w, const Vec3& p) {
    return p.x >= w.lo.x && p.x <= w.hi.x && p.y >= w.lo.y && p.y <= w.hi.y &&
           p.z >= w.lo.z && p.z <= w.hi.z;
  }
  std::vector<BufferWindow> windows_;
};

}  // namespace dpd
