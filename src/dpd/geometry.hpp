#pragma once
// Wall geometry for non-periodic DPD domains (paper Sec. 3: "The main
// challenge here is in imposing non-periodic boundary conditions for
// unsteady flows in complex geometries... we impose effective boundary
// forces Feff on the particles near boundaries that represent solid walls").
//
// Geometry is described by a signed distance function (positive inside the
// fluid). Walls act on nearby particles through (a) a repulsive effective
// boundary force within one cutoff of the wall and (b) bounce-back
// reflection of particles that penetrate, which together enforce no-slip
// and no-penetration (Lei, Fedosov & Karniadakis 2011).

#include <functional>
#include <memory>

#include "dpd/types.hpp"

namespace dpd {

class Geometry {
public:
  virtual ~Geometry() = default;

  /// Signed distance to the nearest wall: > 0 in the fluid, < 0 inside the
  /// wall. Must be accurate within ~2 cutoffs of the boundary.
  virtual double sdf(const Vec3& p) const = 0;

  /// Inward normal (gradient of sdf); default: finite differences.
  virtual Vec3 normal(const Vec3& p) const;
};

/// Everything is fluid (fully periodic test boxes).
class NoWalls final : public Geometry {
public:
  double sdf(const Vec3&) const override { return 1e30; }
};

/// Channel of height H: fluid for 0 < z < H (x, y unbounded/periodic).
class ChannelZ final : public Geometry {
public:
  explicit ChannelZ(double H) : H_(H) {}
  double sdf(const Vec3& p) const override { return std::min(p.z, H_ - p.z); }
  Vec3 normal(const Vec3& p) const override {
    return p.z < 0.5 * H_ ? Vec3{0, 0, 1} : Vec3{0, 0, -1};
  }

private:
  double H_;
};

/// Circular pipe of radius R along x (used by the Fig. 8 pipe-flow bench).
class PipeX final : public Geometry {
public:
  PipeX(double R, double cy, double cz) : R_(R), cy_(cy), cz_(cz) {}
  double sdf(const Vec3& p) const override {
    const double r = std::hypot(p.y - cy_, p.z - cz_);
    return R_ - r;
  }
  Vec3 normal(const Vec3& p) const override {
    const double dy = p.y - cy_, dz = p.z - cz_;
    const double r = std::hypot(dy, dz);
    if (r < 1e-12) return {0, 0, 1};
    return {0.0, -dy / r, -dz / r};
  }

private:
  double R_, cy_, cz_;
};

/// Channel 0 < z < H with a rectangular aneurysm-like cavity bulging above
/// it: fluid also for x in (x0, x1), H <= z < H + depth. The 3D counterpart
/// of mesh::QuadMesh::channel_with_cavity (y unbounded/periodic).
class ChannelWithCavityZ final : public Geometry {
public:
  ChannelWithCavityZ(double H, double x0, double x1, double depth)
      : H_(H), x0_(x0), x1_(x1), depth_(depth) {}
  double sdf(const Vec3& p) const override;

private:
  double H_, x0_, x1_, depth_;
};

}  // namespace dpd
