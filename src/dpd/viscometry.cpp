#include "dpd/viscometry.hpp"

#include <cmath>

#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"

namespace dpd {

ViscometryResult measure_viscosity(const ViscometryParams& p) {
  DpdParams prm = p.dpd;
  prm.box = {p.box_len, p.box_len, p.channel_height};
  prm.periodic = {true, true, false};

  DpdSystem sys(prm, std::make_shared<ChannelZ>(p.channel_height));
  sys.fill(p.density, kSolvent, p.seed, 0.1);
  const double g = p.body_force;
  sys.set_body_force([g](const Vec3&, Species) { return Vec3{g, 0, 0}; });

  for (int s = 0; s < p.warmup_steps; ++s) sys.step();

  SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = p.bins;
  FieldSampler sampler(sys, sp);
  double temp = 0.0;
  for (int s = 0; s < p.sample_steps; ++s) {
    sys.step();
    sampler.accumulate(sys);
    // transverse temperature: the y/z components carry no mean flow, so
    // they measure the thermostat without streaming bias
    double ke = 0.0;
    for (std::size_t i = 0; i < sys.size(); ++i)
      ke += sys.velocities()[i].y * sys.velocities()[i].y +
            sys.velocities()[i].z * sys.velocities()[i].z;
    temp += ke / (2.0 * static_cast<double>(sys.size()));
  }
  const auto prof = sampler.snapshot();

  // least-squares fit of u(z) = C z (H - z) over the bins (skip the two
  // wall-adjacent bins, where the effective boundary force distorts the
  // profile)
  const double H = p.channel_height;
  double num = 0.0, den = 0.0;
  for (int b = 1; b + 1 < p.bins; ++b) {
    const double z = (static_cast<double>(b) + 0.5) * H / p.bins;
    const double phi = z * (H - z);
    num += prof[static_cast<std::size_t>(b)] * phi;
    den += phi * phi;
  }
  const double C = num / den;

  ViscometryResult r;
  r.u_max = C * H * H / 4.0;
  // u(z) = (g rho / 2 mu) z (H - z)  =>  mu = g rho / (2 C)
  r.dynamic_viscosity = g * p.density / (2.0 * C);
  r.kinematic_viscosity = r.dynamic_viscosity / p.density;
  r.measured_temperature = temp / p.sample_steps;

  double res = 0.0;
  int cnt = 0;
  for (int b = 1; b + 1 < p.bins; ++b) {
    const double z = (static_cast<double>(b) + 0.5) * H / p.bins;
    const double d = prof[static_cast<std::size_t>(b)] - C * z * (H - z);
    res += d * d;
    ++cnt;
  }
  r.fit_residual = std::sqrt(res / cnt) / (std::fabs(r.u_max) + 1e-30);
  return r;
}

}  // namespace dpd
