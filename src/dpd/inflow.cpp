#include "dpd/inflow.hpp"

#include "resilience/blob.hpp"

#include <cmath>

namespace dpd {

namespace {
double axis_of(const Vec3& v, int axis) { return axis == 0 ? v.x : axis == 1 ? v.y : v.z; }
}  // namespace

FlowBc::FlowBc(FlowBcParams p) : prm_(std::move(p)), rng_(prm_.seed) {
  if (!prm_.target_velocity)
    prm_.target_velocity = [](const Vec3&) { return Vec3{}; };
}

void FlowBc::apply(DpdSystem& sys) {
  const auto& box = sys.params().box;
  const double L = axis_of(box, prm_.axis);
  auto& pos = sys.positions();
  auto& vel = sys.velocities();

  // 1) delete escapees (both faces: inflow insertion replenishes)
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const double c = axis_of(pos[i], prm_.axis);
    if (c < 0.0 || c > L) dead.push_back(i);
  }
  deleted_ += dead.size();
  sys.remove_particles(std::move(dead));

  // 2) relax buffer velocities towards the imposed profile
  std::size_t in_buffer = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.frozen()[i]) continue;
    const double c = axis_of(pos[i], prm_.axis);
    if (c > prm_.buffer_len) continue;
    ++in_buffer;
    const Vec3 vt = prm_.target_velocity(pos[i]);
    vel[i] += (vt - vel[i]) * prm_.relax;
  }

  // 3) insert to hold the buffer at the target density (counts only the
  //    fluid volume: rejection-sample positions against the wall geometry)
  const double area_like = (prm_.axis == 0   ? box.y * box.z
                            : prm_.axis == 1 ? box.x * box.z
                                             : box.x * box.y);
  // global guard: estimate the fluid volume once and stop inserting while
  // the whole box runs denser than the target
  if (fluid_volume_ < 0.0) {
    std::mt19937 probe_rng(12345);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::size_t hits = 0;
    const std::size_t probes = 4000;
    for (std::size_t k = 0; k < probes; ++k) {
      Vec3 p{u01(probe_rng) * box.x, u01(probe_rng) * box.y, u01(probe_rng) * box.z};
      if (sys.geometry().sdf(p) > 0.0) ++hits;
    }
    fluid_volume_ = box.x * box.y * box.z * static_cast<double>(hits) /
                    static_cast<double>(probes);
  }
  const double global_density = static_cast<double>(sys.size()) / fluid_volume_;
  if (global_density > prm_.max_density_factor * prm_.density) return;

  const auto target = static_cast<std::size_t>(prm_.density * prm_.buffer_len * area_like);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> th(0.0, std::sqrt(sys.params().kBT));
  std::size_t attempts = 0;
  while (in_buffer < target && attempts < 50 * target) {
    ++attempts;
    Vec3 p{u01(rng_) * box.x, u01(rng_) * box.y, u01(rng_) * box.z};
    switch (prm_.axis) {
      case 0: p.x = u01(rng_) * prm_.buffer_len; break;
      case 1: p.y = u01(rng_) * prm_.buffer_len; break;
      default: p.z = u01(rng_) * prm_.buffer_len; break;
    }
    if (sys.geometry().sdf(p) <= 0.2) continue;  // don't insert into walls
    const Vec3 vt = prm_.target_velocity(p);
    sys.add_particle(p, {vt.x + th(rng_), vt.y + th(rng_), vt.z + th(rng_)}, kSolvent);
    ++in_buffer;
    ++inserted_;
  }
}

void FlowBc::save_state(resilience::BlobWriter& w) const {
  resilience::put_rng(w, rng_);
  w.pod(static_cast<std::uint64_t>(inserted_));
  w.pod(static_cast<std::uint64_t>(deleted_));
  w.pod(fluid_volume_);
}

void FlowBc::load_state(resilience::BlobReader& r) {
  resilience::get_rng(r, rng_);
  inserted_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
  deleted_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
  r.pod(fluid_volume_);
}

}  // namespace dpd
