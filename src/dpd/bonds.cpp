#include "dpd/bonds.hpp"

#include "resilience/blob.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpd {

void BondSet::add_forces(DpdSystem& sys) {
  auto& pos = sys.positions();
  auto& frc = sys.forces();
  const auto& ghost = sys.ghost_mask();
  const bool dist = sys.distributed();
  for (const Bond& b : bonds_) {
    const long li = sys.local_of(b.i), lj = sys.local_of(b.j);
    if (li < 0 && lj < 0) continue;  // neither endpoint here: another rank's work
    if (li < 0 || lj < 0) {
      // One endpoint resolved. On a single rank that means the partner was
      // removed without on_remove_gids pruning — treat as dropped. Under
      // decomposition an owned endpoint whose partner is missing means the
      // bond outgrew the halo width: fail loudly rather than silently
      // zeroing the spring.
      const long have = li < 0 ? lj : li;
      if (dist && !ghost[static_cast<std::size_t>(have)])
        throw std::runtime_error("BondSet: bond partner outside halo (bond longer than rc+skin)");
      continue;
    }
    const auto ui = static_cast<std::size_t>(li), uj = static_cast<std::size_t>(lj);
    const Vec3 dr = sys.min_image(pos[ui], pos[uj]);  // i -> j
    const double r = dr.norm();
    if (r < 1e-12) continue;
    const double f = b.k * (r - b.r0);  // >0: stretched, pull together
    const Vec3 er = dr * (1.0 / r);
    if (!ghost[ui]) frc[ui] += er * f;
    if (!ghost[uj]) frc[uj] -= er * f;
  }
}

void BondSet::on_remove_gids(const std::vector<std::uint32_t>& gids) {
  std::vector<Bond> kept;
  kept.reserve(bonds_.size());
  for (const Bond& b : bonds_) {
    const bool dead = std::find(gids.begin(), gids.end(), b.i) != gids.end() ||
                      std::find(gids.begin(), gids.end(), b.j) != gids.end();
    if (!dead) kept.push_back(b);  // bonded partner removed: drop the bond
  }
  bonds_ = std::move(kept);
}

double BondSet::max_strain(const DpdSystem& sys) const {
  double m = 0.0;
  for (const Bond& b : bonds_) {
    const long li = sys.local_of(b.i), lj = sys.local_of(b.j);
    if (li < 0 || lj < 0) continue;
    const double r = sys.min_image(sys.positions()[static_cast<std::size_t>(li)],
                                   sys.positions()[static_cast<std::size_t>(lj)])
                         .norm();
    m = std::max(m, std::fabs(r - b.r0) / b.r0);
  }
  return m;
}

std::vector<std::size_t> make_rbc_ring(DpdSystem& sys, BondSet& bonds,
                                       const RbcRingParams& p) {
  if (p.beads < 4) throw std::invalid_argument("make_rbc_ring: need >= 4 beads");
  std::vector<std::size_t> idx;
  idx.reserve(static_cast<std::size_t>(p.beads));
  for (int k = 0; k < p.beads; ++k) {
    const double th = 2.0 * M_PI * k / p.beads;
    Vec3 q = p.center;
    switch (p.plane) {
      case 0: q.x += p.radius * std::cos(th); q.y += p.radius * std::sin(th); break;
      case 1: q.x += p.radius * std::cos(th); q.z += p.radius * std::sin(th); break;
      default: q.y += p.radius * std::cos(th); q.z += p.radius * std::sin(th); break;
    }
    idx.push_back(sys.add_particle(q, {}, kRbcBead));
  }
  const double r1 = 2.0 * p.radius * std::sin(M_PI / p.beads);      // neighbour distance
  const double r2 = 2.0 * p.radius * std::sin(2.0 * M_PI / p.beads);  // 2nd neighbour
  const auto n = static_cast<std::size_t>(p.beads);
  for (std::size_t k = 0; k < n; ++k) {
    bonds.add_bond(sys.gid_of(idx[k]), sys.gid_of(idx[(k + 1) % n]), r1, p.k_spring);
    bonds.add_bond(sys.gid_of(idx[k]), sys.gid_of(idx[(k + 2) % n]), r2, p.k_bend);
  }
  return idx;
}

void BondSet::save_state(resilience::BlobWriter& w) const { w.vec(bonds_); }

void BondSet::load_state(resilience::BlobReader& r) { bonds_ = r.vec<Bond>(); }

}  // namespace dpd
