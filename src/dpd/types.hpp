#pragma once
// Shared small types for the DPD engine.

#include <cmath>
#include <cstdint>

namespace dpd {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
};

/// Particle species. Pair coefficients are indexed by (species, species).
enum Species : std::uint8_t {
  kSolvent = 0,
  kRbcBead = 1,
  kPlatelet = 2,
  kNumSpecies = 3,
};

/// Platelet activation state (Pivkin-Richardson-Karniadakis model).
enum class PlateletState : std::uint8_t {
  Passive = 0,    ///< circulating, non-adhesive
  Triggered = 1,  ///< touched an adhesive region; activation delay running
  Active = 2,     ///< adhesive: attracts wall sites and other active platelets
  Bound = 3,      ///< arrested at the wall (part of the thrombus)
};

/// Deterministic symmetric counter-based RNG used for the pairwise random
/// force: the same (step, i, j) always yields the same variate on both
/// partners, with no per-thread state (SplitMix64-style mixing).
inline double pair_gaussian_like(std::uint64_t step, std::uint32_t i, std::uint32_t j) {
  std::uint64_t z = step * 0x9E3779B97F4A7C15ull;
  const std::uint64_t lo = i < j ? i : j;
  const std::uint64_t hi = i < j ? j : i;
  z ^= (lo + 0xBF58476D1CE4E5B9ull) * 0x94D049BB133111EBull;
  z ^= (hi + 0x94D049BB133111EBull) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  // uniform in [-sqrt(3), sqrt(3)): zero mean, unit variance — a standard
  // substitution for gaussian noise in DPD (Groot & Warren 1997).
  const double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return (2.0 * u - 1.0) * 1.7320508075688772;
}

}  // namespace dpd
