#pragma once
// Field sampling for atomistic data: velocities/densities accumulated over
// spatial bins (size ~ rc, as in the paper's WPOD pipeline, Sec. 3.4) and
// short time windows of Nts steps. Each window yields one "snapshot" — the
// input to WPOD and to Fig. 7/8-style post-processing.

#include <cstddef>
#include <vector>

#include "dpd/system.hpp"
#include "la/vector.hpp"

namespace dpd {

struct SamplerParams {
  int nx = 8, ny = 8, nz = 8;  ///< bin grid over the box
  int component = 0;           ///< velocity component sampled: 0=x, 1=y, 2=z
  Species only_species = kSolvent;
  bool all_species = true;
};

/// Accumulates per-bin mean velocity over a window of steps.
class FieldSampler {
public:
  FieldSampler(const DpdSystem& sys, SamplerParams p);

  std::size_t num_bins() const {
    return static_cast<std::size_t>(prm_.nx) * prm_.ny * prm_.nz;
  }

  /// Add the current system state to the window.
  void accumulate(const DpdSystem& sys);

  /// Windowed mean velocity per bin (bins never visited read 0); clears the
  /// accumulator for the next window.
  la::Vector snapshot();

  /// Per-bin sample counts of the *current* accumulation window.
  const std::vector<std::size_t>& counts() const { return count_; }

  /// Bin center coordinates.
  Vec3 bin_center(std::size_t bin) const;

  /// Checkpoint the partially accumulated window (sums and counts).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  // analyze: no-checkpoint (constructor configuration)
  SamplerParams prm_;
  // analyze: no-checkpoint (copied from the system geometry at construction)
  Vec3 box_;
  std::vector<double> sum_;
  std::vector<std::size_t> count_;
};

}  // namespace dpd
