#pragma once
// Bonded interactions for coarse-grained blood cells: harmonic springs
// between beads, with second-neighbour ("bending") springs stiffening the
// contour. make_rbc_ring() builds the paper's coarse RBC representation:
// a closed bead-spring ring (the 2D cross-section of the spectrin-network
// membrane models used in DPD blood simulations).

#include <vector>

#include "dpd/system.hpp"

namespace dpd {

struct Bond {
  std::size_t i = 0, j = 0;
  double r0 = 0.5;  ///< rest length
  double k = 50.0;  ///< spring stiffness
};

class BondSet final : public ForceModule {
public:
  void add_bond(std::size_t i, std::size_t j, double r0, double k) {
    bonds_.push_back({i, j, r0, k});
  }
  std::size_t size() const { return bonds_.size(); }
  const std::vector<Bond>& bonds() const { return bonds_; }

  void add_forces(DpdSystem& sys) override;
  void on_remap(const std::vector<long>& new_index) override;

  /// Max |r - r0| / r0 over all bonds (integrity diagnostic).
  double max_strain(const DpdSystem& sys) const;

  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  std::vector<Bond> bonds_;
};

struct RbcRingParams {
  Vec3 center{};
  double radius = 2.0;
  int beads = 16;
  double k_spring = 100.0;  ///< neighbour spring stiffness
  double k_bend = 25.0;     ///< second-neighbour (bending) stiffness
  /// Ring plane: 0 = xy, 1 = xz, 2 = yz.
  int plane = 1;
};

/// Insert an RBC ring into the system and register its bonds on `bonds`.
/// Returns the bead indices.
std::vector<std::size_t> make_rbc_ring(DpdSystem& sys, BondSet& bonds,
                                       const RbcRingParams& p);

}  // namespace dpd
