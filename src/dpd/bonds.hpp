#pragma once
// Bonded interactions for coarse-grained blood cells: harmonic springs
// between beads, with second-neighbour ("bending") springs stiffening the
// contour. make_rbc_ring() builds the paper's coarse RBC representation:
// a closed bead-spring ring (the 2D cross-section of the spectrin-network
// membrane models used in DPD blood simulations).
//
// Bonds are keyed by *global* particle IDs, so a bond list is invariant to
// index compaction and to spatial decomposition: the same replicated list
// works on every rank, each rank resolving gids to local slots and applying
// forces to the endpoints it owns (ghost endpoints receive theirs from
// their owning rank, which holds the same bond).

#include <cstdint>
#include <vector>

#include "dpd/system.hpp"

namespace dpd {

struct Bond {
  std::uint32_t i = 0, j = 0;  ///< global particle IDs of the endpoints
  double r0 = 0.5;             ///< rest length
  double k = 50.0;             ///< spring stiffness
};

class BondSet final : public ForceModule {
public:
  void add_bond(std::uint32_t gid_i, std::uint32_t gid_j, double r0, double k) {
    bonds_.push_back({gid_i, gid_j, r0, k});
  }
  std::size_t size() const { return bonds_.size(); }
  const std::vector<Bond>& bonds() const { return bonds_; }

  void add_forces(DpdSystem& sys) override;
  /// Drop bonds whose partner was removed from the system.
  void on_remove_gids(const std::vector<std::uint32_t>& gids) override;

  /// Max |r - r0| / r0 over bonds with both endpoints resolvable locally
  /// (all of them on a single rank; max-reduce across ranks otherwise).
  double max_strain(const DpdSystem& sys) const;

  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  std::vector<Bond> bonds_;
};

struct RbcRingParams {
  Vec3 center{};
  double radius = 2.0;
  int beads = 16;
  double k_spring = 100.0;  ///< neighbour spring stiffness
  double k_bend = 25.0;     ///< second-neighbour (bending) stiffness
  /// Ring plane: 0 = xy, 1 = xz, 2 = yz.
  int plane = 1;
};

/// Insert an RBC ring into the system and register its bonds on `bonds`.
/// Returns the bead indices.
std::vector<std::size_t> make_rbc_ring(DpdSystem& sys, BondSet& bonds,
                                       const RbcRingParams& p);

}  // namespace dpd
