#pragma once
// Inflow/outflow boundary conditions for non-periodic DPD flows (Lei,
// Fedosov & Karniadakis, JCP 2011): particles are inserted at the inflow
// according to the local flux / target density, velocities in the inflow
// buffer are relaxed towards the imposed boundary velocity, and particles
// leaving through the outflow plane are deleted. The imposed velocity is a
// callback, so the continuum coupling can refresh it every exchange step.

#include <functional>

#include "dpd/system.hpp"

namespace dpd {

struct FlowBcParams {
  int axis = 0;             ///< flow axis: 0=x, 1=y, 2=z
  double buffer_len = 2.0;  ///< inflow buffer thickness (in rc units)
  double density = 3.0;     ///< target number density in the buffer
  double relax = 0.2;       ///< per-step velocity relaxation factor in the buffer
  /// Insertion stops while the whole-domain density exceeds this multiple of
  /// `density` (prevents the buffer top-up from over-pressurising the box
  /// before the outflow has equilibrated).
  double max_density_factor = 1.05;
  unsigned seed = 99;
  /// Imposed velocity at a point (evaluated in the buffer and at insertion).
  // lint: std-function-ok (coupling callback, evaluated per particle not per pair)
  std::function<Vec3(const Vec3&)> target_velocity;
};

class FlowBc {
public:
  explicit FlowBc(FlowBcParams p);

  /// Call once per DPD step, after DpdSystem::step().
  void apply(DpdSystem& sys);

  /// Replace the imposed velocity (continuum coupling hook).
  // lint: std-function-ok (setup-time setter, not a pair-loop parameter)
  void set_target_velocity(std::function<Vec3(const Vec3&)> f) {
    prm_.target_velocity = std::move(f);
  }

  std::size_t inserted_total() const { return inserted_; }
  std::size_t deleted_total() const { return deleted_; }

  /// Checkpoint the insertion RNG, counters and cached fluid volume (the
  /// callback is configuration, re-established by the driver).
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  // analyze: no-checkpoint (configuration, incl. the coupling velocity callback)
  FlowBcParams prm_;
  std::mt19937 rng_;
  std::size_t inserted_ = 0, deleted_ = 0;
  double fluid_volume_ = -1.0;  ///< lazily estimated from the geometry
};

}  // namespace dpd
