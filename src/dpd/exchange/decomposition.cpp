#include "dpd/exchange/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dpd::exchange {

GridDims auto_dims(int nranks, const Vec3& box) {
  if (nranks < 1) throw std::invalid_argument("exchange: auto_dims needs nranks >= 1");
  GridDims best{1, 1, nranks};
  double best_score = -1.0;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px) continue;
    const int rest = nranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py) continue;
      const int pz = rest / py;
      const double lx = box.x / px, ly = box.y / py, lz = box.z / pz;
      const double score = ly * lz + lx * lz + lx * ly;  // per-rank surface / 2
      if (best_score < 0.0 || score < best_score - 1e-12) {
        best_score = score;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

Decomposition::Decomposition(const Vec3& box, const std::array<bool, 3>& periodic, GridDims dims,
                             double halo_width)
    : box_(box), periodic_(periodic), dims_(dims), halo_(halo_width) {
  if (dims_.px < 1 || dims_.py < 1 || dims_.pz < 1)
    throw std::invalid_argument("exchange: decomposition dims must be positive");
  if (halo_ <= 0.0) throw std::invalid_argument("exchange: halo_width must be positive");
  const int n = nranks();
  neighbors_.resize(static_cast<std::size_t>(n));
  // box-to-box periodic distance between every subdomain pair; with the
  // point-to-box halo test using the same strict `< halo` criterion, a
  // particle can only ever be ghosted to a rank in this precomputed set
  const double h2 = halo_ * halo_;
  for (int r = 0; r < n; ++r) {
    const Subdomain a = subdomain(r);
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      const Subdomain b = subdomain(d);
      auto axis = [&](double alo, double ahi, double blo, double bhi, double L,
                      bool per) -> double {
        auto plain = [&](double shift) {
          return std::max(0.0, std::max(blo + shift - ahi, alo - (bhi + shift)));
        };
        double v = plain(0.0);
        if (per) v = std::min({v, plain(-L), plain(L)});
        return v;
      };
      const double dx = axis(a.lo.x, a.hi.x, b.lo.x, b.hi.x, box_.x, periodic_[0]);
      const double dy = axis(a.lo.y, a.hi.y, b.lo.y, b.hi.y, box_.y, periodic_[1]);
      const double dz = axis(a.lo.z, a.hi.z, b.lo.z, b.hi.z, box_.z, periodic_[2]);
      if (dx * dx + dy * dy + dz * dz < h2) neighbors_[static_cast<std::size_t>(r)].push_back(d);
    }
  }
}

std::array<int, 3> Decomposition::coords_of(int rank) const {
  const int cx = rank % dims_.px;
  const int cy = (rank / dims_.px) % dims_.py;
  const int cz = rank / (dims_.px * dims_.py);
  return {cx, cy, cz};
}

int Decomposition::rank_at(int cx, int cy, int cz) const {
  auto adjust = [](int c, int n, bool per) {
    if (per) return ((c % n) + n) % n;
    return std::clamp(c, 0, n - 1);
  };
  cx = adjust(cx, dims_.px, periodic_[0]);
  cy = adjust(cy, dims_.py, periodic_[1]);
  cz = adjust(cz, dims_.pz, periodic_[2]);
  return (cz * dims_.py + cy) * dims_.px + cx;
}

Subdomain Decomposition::subdomain(int rank) const {
  if (rank < 0 || rank >= nranks())
    throw std::invalid_argument("exchange: subdomain rank " + std::to_string(rank) +
                                " out of range");
  const auto c = coords_of(rank);
  const double lx = box_.x / dims_.px, ly = box_.y / dims_.py, lz = box_.z / dims_.pz;
  Subdomain s;
  s.lo = {c[0] * lx, c[1] * ly, c[2] * lz};
  s.hi = {(c[0] + 1) * lx, (c[1] + 1) * ly, (c[2] + 1) * lz};
  return s;
}

int Decomposition::rank_of_position(const Vec3& p) const {
  auto cell = [](double x, double L, int n, bool per) {
    if (per) {
      x = std::fmod(x, L);
      if (x < 0.0) x += L;
    }
    return std::clamp(static_cast<int>(x / L * n), 0, n - 1);
  };
  return rank_at(cell(p.x, box_.x, dims_.px, periodic_[0]),
                 cell(p.y, box_.y, dims_.py, periodic_[1]),
                 cell(p.z, box_.z, dims_.pz, periodic_[2]));
}

double Decomposition::dist2_to_subdomain(const Vec3& p, int rank) const {
  const Subdomain s = subdomain(rank);
  auto axis = [](double x, double lo, double hi, double L, bool per) {
    auto plain = [&](double xx) { return xx < lo ? lo - xx : (xx > hi ? xx - hi : 0.0); };
    double v = plain(x);
    if (per) v = std::min({v, plain(x - L), plain(x + L)});
    return v;
  };
  const double dx = axis(p.x, s.lo.x, s.hi.x, box_.x, periodic_[0]);
  const double dy = axis(p.y, s.lo.y, s.hi.y, box_.y, periodic_[1]);
  const double dz = axis(p.z, s.lo.z, s.hi.z, box_.z, periodic_[2]);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace dpd::exchange
