#include "dpd/exchange/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dpd::exchange {

GridDims auto_dims(int nranks, const Vec3& box) {
  if (nranks < 1) throw std::invalid_argument("exchange: auto_dims needs nranks >= 1");
  GridDims best{1, 1, nranks};
  double best_score = -1.0;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px) continue;
    const int rest = nranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py) continue;
      const int pz = rest / py;
      const double lx = box.x / px, ly = box.y / py, lz = box.z / pz;
      const double score = ly * lz + lx * lz + lx * ly;  // per-rank surface / 2
      if (best_score < 0.0 || score < best_score - 1e-12) {
        best_score = score;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

Decomposition::Decomposition(const Vec3& box, const std::array<bool, 3>& periodic, GridDims dims,
                             double halo_width)
    : box_(box), periodic_(periodic), dims_(dims), halo_(halo_width) {
  if (dims_.px < 1 || dims_.py < 1 || dims_.pz < 1)
    throw std::invalid_argument("exchange: decomposition dims must be positive");
  if (halo_ <= 0.0) throw std::invalid_argument("exchange: halo_width must be positive");
  const int ns[3] = {dims_.px, dims_.py, dims_.pz};
  const double Ls[3] = {box_.x, box_.y, box_.z};
  for (int a = 0; a < 3; ++a) {
    auto& c = cuts_[static_cast<std::size_t>(a)];
    c.resize(static_cast<std::size_t>(ns[a]) + 1);
    const double w = Ls[a] / ns[a];
    for (int k = 0; k < ns[a]; ++k) c[static_cast<std::size_t>(k)] = w * k;
    c[static_cast<std::size_t>(ns[a])] = Ls[a];
  }
  rebuild_neighbors();
}

void Decomposition::rebuild_neighbors() {
  const int n = nranks();
  neighbors_.assign(static_cast<std::size_t>(n), {});
  // box-to-box periodic distance between every subdomain pair; with the
  // point-to-box halo test using the same strict `< halo` criterion, a
  // particle can only ever be ghosted to a rank in this precomputed set
  const double h2 = halo_ * halo_;
  for (int r = 0; r < n; ++r) {
    const Subdomain a = subdomain(r);
    for (int d = 0; d < n; ++d) {
      if (d == r) continue;
      const Subdomain b = subdomain(d);
      auto axis = [&](double alo, double ahi, double blo, double bhi, double L,
                      bool per) -> double {
        auto plain = [&](double shift) {
          return std::max(0.0, std::max(blo + shift - ahi, alo - (bhi + shift)));
        };
        double v = plain(0.0);
        if (per) v = std::min({v, plain(-L), plain(L)});
        return v;
      };
      const double dx = axis(a.lo.x, a.hi.x, b.lo.x, b.hi.x, box_.x, periodic_[0]);
      const double dy = axis(a.lo.y, a.hi.y, b.lo.y, b.hi.y, box_.y, periodic_[1]);
      const double dz = axis(a.lo.z, a.hi.z, b.lo.z, b.hi.z, box_.z, periodic_[2]);
      if (dx * dx + dy * dy + dz * dz < h2) neighbors_[static_cast<std::size_t>(r)].push_back(d);
    }
  }
}

void Decomposition::set_bounds(int axis, const std::vector<double>& b) {
  if (axis < 0 || axis > 2)
    throw std::invalid_argument("exchange: set_bounds axis " + std::to_string(axis) +
                                " out of range");
  const int n = axis == 0 ? dims_.px : axis == 1 ? dims_.py : dims_.pz;
  const double L = axis == 0 ? box_.x : axis == 1 ? box_.y : box_.z;
  if (b.size() != static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("exchange: set_bounds expects " + std::to_string(n + 1) +
                                " boundaries, got " + std::to_string(b.size()));
  if (b.front() != 0.0 || b.back() != L)
    throw std::invalid_argument("exchange: set_bounds boundaries must span [0, box length]");
  for (std::size_t i = 1; i < b.size(); ++i)
    if (!(b[i] > b[i - 1]))
      throw std::invalid_argument("exchange: set_bounds boundaries must be strictly ascending");
  cuts_[static_cast<std::size_t>(axis)] = b;
  rebuild_neighbors();
}

bool Decomposition::rebalance(const std::array<std::vector<double>, 3>& hist,
                              double max_shift_fraction) {
  const double max_shift = max_shift_fraction * halo_;
  const int ns[3] = {dims_.px, dims_.py, dims_.pz};
  const double Ls[3] = {box_.x, box_.y, box_.z};
  bool moved = false;
  for (int a = 0; a < 3; ++a) {
    const int n = ns[a];
    if (n < 2) continue;
    const auto& h = hist[static_cast<std::size_t>(a)];
    if (h.empty()) continue;
    double total = 0.0;
    for (double v : h) total += v;
    if (total <= 0.0) continue;
    const double L = Ls[a];
    const auto nbins = h.size();
    const double bw = L / static_cast<double>(nbins);
    std::vector<double> prefix(nbins + 1, 0.0);
    for (std::size_t b = 0; b < nbins; ++b) prefix[b + 1] = prefix[b] + h[b];

    auto& cuts = cuts_[static_cast<std::size_t>(a)];
    std::vector<double> next = cuts;
    for (int k = 1; k < n; ++k) {
      // Marginal quantile: the position splitting the axis counts k : n-k,
      // linearly interpolated inside its histogram bin.
      const double target = total * k / n;
      auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
      auto b = static_cast<std::size_t>(
          std::clamp<std::ptrdiff_t>(it - prefix.begin() - 1, 0,
                                     static_cast<std::ptrdiff_t>(nbins) - 1));
      const double frac = h[b] > 0.0 ? (target - prefix[b]) / h[b] : 0.5;
      double x = (static_cast<double>(b) + frac) * bw;
      // Bounded step: a cut that moves less than halo_width keeps every
      // post-rebalance migration inside the *new* neighbor shell (the new
      // owner's slab is within the shift of the old owner's, which held the
      // particle), so MigrationExchanger needs no long-range path.
      x = std::clamp(x, cuts[static_cast<std::size_t>(k)] - max_shift,
                     cuts[static_cast<std::size_t>(k)] + max_shift);
      next[static_cast<std::size_t>(k)] = x;
    }
    // Keep slabs comfortably wide (half the smaller of halo and the uniform
    // width) and ordered; when the passes below push a cut back out of its
    // bounded step, skip this axis rather than risk migration legality.
    const double min_gap = 0.5 * std::min(halo_, L / n);
    for (int k = 1; k < n; ++k)
      next[static_cast<std::size_t>(k)] =
          std::max(next[static_cast<std::size_t>(k)], next[static_cast<std::size_t>(k) - 1] + min_gap);
    for (int k = n - 1; k >= 1; --k)
      next[static_cast<std::size_t>(k)] =
          std::min(next[static_cast<std::size_t>(k)], next[static_cast<std::size_t>(k) + 1] - min_gap);
    bool ok = true;
    for (int k = 1; k <= n && ok; ++k)
      ok = next[static_cast<std::size_t>(k)] > next[static_cast<std::size_t>(k) - 1];
    for (int k = 1; k < n && ok; ++k)
      ok = std::abs(next[static_cast<std::size_t>(k)] - cuts[static_cast<std::size_t>(k)]) <=
           max_shift + 1e-12;
    if (!ok) continue;
    for (int k = 1; k < n; ++k)
      if (next[static_cast<std::size_t>(k)] != cuts[static_cast<std::size_t>(k)]) moved = true;
    cuts = std::move(next);
  }
  if (moved) rebuild_neighbors();
  return moved;
}

std::array<int, 3> Decomposition::coords_of(int rank) const {
  const int cx = rank % dims_.px;
  const int cy = (rank / dims_.px) % dims_.py;
  const int cz = rank / (dims_.px * dims_.py);
  return {cx, cy, cz};
}

int Decomposition::rank_at(int cx, int cy, int cz) const {
  auto adjust = [](int c, int n, bool per) {
    if (per) return ((c % n) + n) % n;
    return std::clamp(c, 0, n - 1);
  };
  cx = adjust(cx, dims_.px, periodic_[0]);
  cy = adjust(cy, dims_.py, periodic_[1]);
  cz = adjust(cz, dims_.pz, periodic_[2]);
  return (cz * dims_.py + cy) * dims_.px + cx;
}

Subdomain Decomposition::subdomain(int rank) const {
  if (rank < 0 || rank >= nranks())
    throw std::invalid_argument("exchange: subdomain rank " + std::to_string(rank) +
                                " out of range");
  const auto c = coords_of(rank);
  const auto& cx = cuts_[0];
  const auto& cy = cuts_[1];
  const auto& cz = cuts_[2];
  Subdomain s;
  s.lo = {cx[static_cast<std::size_t>(c[0])], cy[static_cast<std::size_t>(c[1])],
          cz[static_cast<std::size_t>(c[2])]};
  s.hi = {cx[static_cast<std::size_t>(c[0]) + 1], cy[static_cast<std::size_t>(c[1]) + 1],
          cz[static_cast<std::size_t>(c[2]) + 1]};
  return s;
}

int Decomposition::rank_of_position(const Vec3& p) const {
  auto cell = [](double x, double L, int n, bool per, const std::vector<double>& cuts) {
    if (per) {
      x = std::fmod(x, L);
      if (x < 0.0) x += L;
    }
    // slab whose [cuts[k], cuts[k+1]) half-open interval holds x — exactly
    // the membership subdomain() describes, whatever the cut positions
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), x);
    const auto k = static_cast<int>(it - cuts.begin()) - 1;
    return std::clamp(k, 0, n - 1);
  };
  return rank_at(cell(p.x, box_.x, dims_.px, periodic_[0], cuts_[0]),
                 cell(p.y, box_.y, dims_.py, periodic_[1], cuts_[1]),
                 cell(p.z, box_.z, dims_.pz, periodic_[2], cuts_[2]));
}

double Decomposition::dist2_to_subdomain(const Vec3& p, int rank) const {
  const Subdomain s = subdomain(rank);
  auto axis = [](double x, double lo, double hi, double L, bool per) {
    auto plain = [&](double xx) { return xx < lo ? lo - xx : (xx > hi ? xx - hi : 0.0); };
    double v = plain(x);
    if (per) v = std::min({v, plain(x - L), plain(x + L)});
    return v;
  };
  const double dx = axis(p.x, s.lo.x, s.hi.x, box_.x, periodic_[0]);
  const double dy = axis(p.y, s.lo.y, s.hi.y, box_.y, periodic_[1]);
  const double dz = axis(p.z, s.lo.z, s.hi.z, box_.z, periodic_[2]);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace dpd::exchange
