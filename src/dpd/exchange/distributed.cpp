#include "dpd/exchange/distributed.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "resilience/blob.hpp"
#include "telemetry/registry.hpp"

namespace dpd::exchange {

namespace {

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t digest_records(std::vector<ParticleRecord> recs) {
  std::sort(recs.begin(), recs.end(),
            [](const ParticleRecord& a, const ParticleRecord& b) { return a.gid < b.gid; });
  std::uint64_t h = 14695981039346656037ull;
  for (const ParticleRecord& r : recs) {
    h = fnv1a_mix(h, r.gid);
    for (double v : {r.pos.x, r.pos.y, r.pos.z, r.vel.x, r.vel.y, r.vel.z})
      h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

GridDims resolve_dims(const DistOptions& opt, int nranks, const Vec3& box) {
  if (opt.dims.count() == 0) return auto_dims(nranks, box);
  if (opt.dims.count() != nranks)
    throw std::invalid_argument("DistributedDpd: dims cover " +
                                std::to_string(opt.dims.count()) + " ranks, comm has " +
                                std::to_string(nranks));
  return opt.dims;
}

double resolve_halo(const DistOptions& opt, const DpdParams& prm) {
  const double floor = prm.rc + prm.skin;
  if (opt.halo_width == 0.0) return floor;
  if (opt.halo_width < floor)
    throw std::invalid_argument("DistributedDpd: halo_width below the rc + skin minimum");
  return opt.halo_width;
}

}  // namespace

std::uint64_t trajectory_digest(const DpdSystem& sys) {
  std::vector<ParticleRecord> recs;
  recs.reserve(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (!sys.is_ghost(i)) recs.push_back(sys.particle_record(i));
  return digest_records(std::move(recs));
}

DistributedDpd::DistributedDpd(const xmp::Comm& comm, DpdSystem& sys, DistOptions opt)
    : comm_(comm),
      sys_(sys),
      opt_(opt),
      decomp_(sys.params().box, sys.params().periodic, resolve_dims(opt, comm.size(), sys.params().box),
              resolve_halo(opt, sys.params())),
      migrate_(comm_, decomp_),
      halo_(comm_, decomp_) {
  opt_.dims = decomp_.dims();
  opt_.halo_width = decomp_.halo_width();
  sys_.set_exchange(this);
  sys_.set_ghost_pair_filter(true, opt_.mode == HaloMode::ReverseOnce);
}

DistributedDpd::~DistributedDpd() {
  sys_.set_exchange(nullptr);
  sys_.set_ghost_pair_filter(false);
}

std::vector<ParticleRecord> DistributedDpd::owned_records(const DpdSystem& sys) const {
  std::vector<ParticleRecord> recs;
  recs.reserve(sys.owned_count());
  for (std::size_t i = 0; i < sys.size(); ++i)
    if (!sys.is_ghost(i)) recs.push_back(sys.particle_record(i));
  return recs;
}

void DistributedDpd::capture_ref(const DpdSystem& sys) {
  const std::size_t n = sys.size();
  ref_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ref_pos_[i] = sys.positions()[i];
}

void DistributedDpd::distribute() {
  if (distributed_) throw std::logic_error("DistributedDpd: distribute() called twice");
  // the replicated-setup contract is checkable cheaply: sizes must agree
  const auto n = static_cast<std::int64_t>(sys_.size());
  if (comm_.allreduce(n, xmp::Op::Min) != comm_.allreduce(n, xmp::Op::Max))
    throw std::runtime_error(
        "DistributedDpd: ranks hold different particle counts — the initial population must "
        "be built identically on every rank before distribute()");
  std::vector<ParticleRecord> owned;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (sys_.is_ghost(i)) continue;
    ParticleRecord r = sys_.particle_record(i);
    if (decomp_.rank_of_position(r.pos) == comm_.rank()) owned.push_back(r);
  }
  sys_.reset_particles(halo_.build(owned));
  capture_ref(sys_);
  distributed_ = true;
  rebuild_pending_ = false;
}

void DistributedDpd::refresh(DpdSystem& sys) {
  if (!distributed_)
    throw std::logic_error("DistributedDpd: stepping before distribute() (or restart load)");
  telemetry::ScopedPhase phase("dpd.exchange");
  ++refresh_count_;
  // Rebalance cadence first: a moved layout already ships a fresh halo. The
  // counter is replicated (every rank refreshes in lockstep), so the inner
  // collective is entered by all ranks or none.
  if (opt_.rebalance_every > 0 && refresh_count_ % static_cast<std::uint64_t>(opt_.rebalance_every) == 0 &&
      rebalance())
    return;
  // Rebuild when any owned particle anywhere drifted past skin/2 since the
  // last rebuild — the same criterion that bounds Verlet-list reuse, and
  // exactly what keeps the rc+skin halo a superset of every rc partner set.
  // The decision is an allreduce so every rank takes the same branch.
  double local = rebuild_pending_ || sys.params().skin <= 0.0
                     ? std::numeric_limits<double>::infinity()
                     : 0.0;
  if (local == 0.0) {
    const auto& ghost = sys.ghost_mask();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      if (ghost[i]) continue;
      const double d2 = sys.min_image(ref_pos_[i], sys.positions()[i]).norm2();
      if (d2 > local) local = d2;
    }
  }
  const double lim = 0.5 * sys.params().skin;
  if (comm_.allreduce(local, xmp::Op::Max) > lim * lim) {
    full_rebuild(sys);
  } else if (opt_.overlap) {
    // Split phase: lanes fly while the engine computes interior rows; the
    // engine's pair pass calls finish_refresh() before touching ghosts.
    halo_.begin_update(sys);
    overlap_pending_ = true;
    overlap_t0_ = std::chrono::steady_clock::now();
  } else {
    halo_.update(sys);
  }
}

void DistributedDpd::finish_refresh(DpdSystem& sys) {
  if (!overlap_pending_) return;
  telemetry::count("dpd.halo.overlap_us",
                   std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                            overlap_t0_)
                       .count());
  halo_.finish_update(sys);
  overlap_pending_ = false;
}

bool DistributedDpd::rebalance() {
  if (!distributed_)
    throw std::logic_error("DistributedDpd: rebalance() before distribute() (or restart load)");
  const auto mine = static_cast<double>(sys_.owned_count());
  const double maxc = comm_.allreduce(mine, xmp::Op::Max);
  const double mean = comm_.allreduce(mine, xmp::Op::Sum) / comm_.size();
  if (mean <= 0.0 || maxc <= opt_.rebalance_threshold * mean) return false;

  // Per-axis marginal histograms of owned positions; the allreduce
  // replicates them, so every rank derives identical cut planes.
  constexpr int kBins = 128;
  std::vector<double> h(3 * kBins, 0.0);
  const Vec3 box = sys_.params().box;
  const double L[3] = {box.x, box.y, box.z};
  const auto& ghost = sys_.ghost_mask();
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (ghost[i]) continue;
    const Vec3 p = sys_.positions()[i];
    const double c[3] = {p.x, p.y, p.z};
    for (int a = 0; a < 3; ++a) {
      const int b = std::clamp(static_cast<int>(c[a] / L[a] * kBins), 0, kBins - 1);
      h[static_cast<std::size_t>(a * kBins + b)] += 1.0;
    }
  }
  const auto g = comm_.allreduce(std::span<const double>(h), xmp::Op::Sum);
  std::array<std::vector<double>, 3> hist;
  for (int a = 0; a < 3; ++a)
    hist[static_cast<std::size_t>(a)].assign(g.begin() + a * kBins, g.begin() + (a + 1) * kBins);
  if (!decomp_.rebalance(hist)) return false;
  telemetry::count("dpd.rebalance.count", 1.0);
  // Ownership follows the moved cuts; the bounded per-cut step keeps every
  // transfer inside the new neighbour shell (see Decomposition::rebalance).
  full_rebuild(sys_);
  return true;
}

void DistributedDpd::full_rebuild(DpdSystem& sys) {
  telemetry::ScopedPhase phase("dpd.exchange.rebuild");
  sys.reset_particles(halo_.build(migrate_.exchange(owned_records(sys))));
  capture_ref(sys);
  rebuild_pending_ = false;
}

void DistributedDpd::after_pairs(DpdSystem& sys) {
  if (opt_.mode == HaloMode::ReverseOnce) halo_.reverse(sys);
}

std::vector<ParticleRecord> DistributedDpd::gather(int root) const {
  auto mine = owned_records(sys_);
  auto all = comm_.gatherv(std::span<const ParticleRecord>(mine), root);
  if (comm_.rank() == root)
    std::sort(all.begin(), all.end(),
              [](const ParticleRecord& a, const ParticleRecord& b) { return a.gid < b.gid; });
  return all;
}

std::uint64_t DistributedDpd::global_digest() const {
  auto mine = owned_records(sys_);
  auto all = comm_.gatherv(std::span<const ParticleRecord>(mine), 0);
  std::vector<std::uint64_t> h{comm_.rank() == 0 ? digest_records(std::move(all)) : 0};
  comm_.bcast(h, 0);
  return h[0];
}

double DistributedDpd::kinetic_temperature() const {
  double ke = 0.0, n = 0.0;
  const auto& ghost = sys_.ghost_mask();
  const auto& frozen = sys_.frozen();
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    if (ghost[i] || frozen[i]) continue;
    ke += Vec3(sys_.velocities()[i]).norm2();
    n += 1.0;
  }
  ke = comm_.allreduce(ke, xmp::Op::Sum);
  n = comm_.allreduce(n, xmp::Op::Sum);
  return n > 0.0 ? ke / (3.0 * n) : 0.0;
}

Vec3 DistributedDpd::total_momentum() const {
  Vec3 p{};
  const auto& ghost = sys_.ghost_mask();
  const auto& frozen = sys_.frozen();
  for (std::size_t i = 0; i < sys_.size(); ++i)
    if (!ghost[i] && !frozen[i]) p += sys_.velocities()[i];
  const double xyz[3] = {p.x, p.y, p.z};
  const auto sum = comm_.allreduce(std::span<const double>(xyz, 3), xmp::Op::Sum);
  return {sum[0], sum[1], sum[2]};
}

std::int64_t DistributedDpd::global_count() const {
  return comm_.allreduce(static_cast<std::int64_t>(sys_.owned_count()), xmp::Op::Sum);
}

namespace {
struct PlateletRow {
  std::uint32_t slot = 0;
  std::uint32_t state = 0;
  double trigger = 0.0;
};
}  // namespace

void DistributedDpd::sync_platelets(PlateletModel& model) {
  std::vector<PlateletRow> mine;
  for (std::size_t k = 0; k < model.total(); ++k) {
    const long li = sys_.local_of(model.particles()[k]);
    if (li < 0 || sys_.is_ghost(static_cast<std::size_t>(li))) continue;  // owner reports
    mine.push_back({static_cast<std::uint32_t>(k),
                    static_cast<std::uint32_t>(model.state_of(k)), model.trigger_time_of(k)});
  }
  const auto rows = comm_.allgatherv(std::span<const PlateletRow>(mine));
  for (const PlateletRow& r : rows) {
    model.set_slot_state(r.slot, static_cast<PlateletState>(r.state), r.trigger);
    if (static_cast<PlateletState>(r.state) != PlateletState::Bound) continue;
    // freeze every local copy (owned or ghost) of a bound platelet; the
    // owner already froze its own in the update's apply phase
    const long li = sys_.local_of(model.particles()[r.slot]);
    if (li < 0) continue;
    const auto i = static_cast<std::size_t>(li);
    sys_.frozen()[i] = 1;
    sys_.velocities()[i] = {};
  }
}

void DistributedDpd::save_state(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::int32_t>(opt_.dims.px));
  w.pod(static_cast<std::int32_t>(opt_.dims.py));
  w.pod(static_cast<std::int32_t>(opt_.dims.pz));
  w.pod(static_cast<std::uint8_t>(opt_.mode));
  w.pod(opt_.halo_width);
  w.pod(static_cast<std::uint8_t>(distributed_));
  // Cut planes: a rebalanced layout must survive restart, or the forced
  // post-load migration would run under uniform cuts that no longer own the
  // particles (and could need paths past the neighbour shell).
  for (int a = 0; a < 3; ++a) {
    const auto& b = decomp_.bounds(a);
    w.pod(static_cast<std::uint64_t>(b.size()));
    for (double v : b) w.pod(v);
  }
}

void DistributedDpd::load_state(resilience::BlobReader& r) {
  GridDims dims;
  dims.px = r.pod<std::int32_t>();
  dims.py = r.pod<std::int32_t>();
  dims.pz = r.pod<std::int32_t>();
  const auto mode = static_cast<HaloMode>(r.pod<std::uint8_t>());
  const double halo = r.pod<double>();
  const bool was_distributed = r.pod<std::uint8_t>() != 0;
  if (dims.px != opt_.dims.px || dims.py != opt_.dims.py || dims.pz != opt_.dims.pz)
    throw resilience::LayoutError("DistributedDpd: checkpoint process grid mismatch");
  if (mode != opt_.mode || halo != opt_.halo_width)
    throw resilience::LayoutError("DistributedDpd: checkpoint halo mode/width mismatch");
  for (int a = 0; a < 3; ++a) {
    const auto nb = r.pod<std::uint64_t>();
    std::vector<double> b(nb);
    for (auto& v : b) v = r.pod<double>();
    if (b != decomp_.bounds(a)) decomp_.set_bounds(a, b);
  }
  distributed_ = was_distributed;
  // plans and displacement refs are not serialised: force a rebuild, which
  // re-derives them from the (already loaded) per-rank particle state
  rebuild_pending_ = true;
}

}  // namespace dpd::exchange
