#pragma once
// Flat-buffer packers for the exchange layer. Halo updates ship six
// contiguous double lanes per message — [x...][y...][z...][vx...][vy...][vz...]
// — gathered straight out of the SoA particle storage, so packing is six
// tight gather loops (and unpacking six scatter loops) over index lists the
// exchanger planned at halo-build time. Reverse force accumulation uses the
// same layout with three lanes. Whole-record traffic (migration, halo
// build) sends trivially-copyable ParticleRecord arrays directly.

#include <cstdint>
#include <vector>

#include "dpd/soa.hpp"

namespace dpd::exchange {

/// Gather slots `idx` of two SoA arrays into out = [ax][ay][az][bx][by][bz].
void pack_posvel(const SoA3& a, const SoA3& b, const std::vector<std::uint32_t>& idx,
                 std::vector<double>& out);

/// Scatter a pack_posvel buffer back into slots `idx` of a and b. Throws
/// std::runtime_error when the buffer does not hold exactly 6*idx.size()
/// doubles (a mismatched exchange must fail loudly).
void unpack_posvel(SoA3& a, SoA3& b, const std::vector<std::uint32_t>& idx,
                   const std::vector<double>& in);

/// Gather slots `idx` of one SoA array into out = [x][y][z].
void pack_lanes(const SoA3& a, const std::vector<std::uint32_t>& idx, std::vector<double>& out);

/// out[idx[k]] += in lanes (pack_lanes layout); size-checked like
/// unpack_posvel. Used by the reverse exchange to add ghost-accumulated
/// forces into the owner's force array.
void accumulate_lanes(SoA3& a, const std::vector<std::uint32_t>& idx,
                      const std::vector<double>& in);

}  // namespace dpd::exchange
