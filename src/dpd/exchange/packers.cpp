#include "dpd/exchange/packers.hpp"

#include <stdexcept>
#include <string>

namespace dpd::exchange {

namespace {
void check_size(std::size_t have, std::size_t want, const char* what) {
  if (have != want)
    throw std::runtime_error(std::string("exchange: ") + what + " buffer holds " +
                             std::to_string(have) + " doubles, expected " +
                             std::to_string(want));
}
}  // namespace

void pack_posvel(const SoA3& a, const SoA3& b, const std::vector<std::uint32_t>& idx,
                 std::vector<double>& out) {
  const std::size_t n = idx.size();
  out.resize(6 * n);
  double* w = out.data();
  const std::vector<double>* lanes[6] = {&a.xs(), &a.ys(), &a.zs(), &b.xs(), &b.ys(), &b.zs()};
  for (const auto* lane : lanes) {
    const double* src = lane->data();
    for (std::size_t k = 0; k < n; ++k) w[k] = src[idx[k]];
    w += n;
  }
}

void unpack_posvel(SoA3& a, SoA3& b, const std::vector<std::uint32_t>& idx,
                   const std::vector<double>& in) {
  const std::size_t n = idx.size();
  check_size(in.size(), 6 * n, "halo update");
  const double* r = in.data();
  std::vector<double>* lanes[6] = {&a.xs(), &a.ys(), &a.zs(), &b.xs(), &b.ys(), &b.zs()};
  for (auto* lane : lanes) {
    double* dst = lane->data();
    for (std::size_t k = 0; k < n; ++k) dst[idx[k]] = r[k];
    r += n;
  }
}

void pack_lanes(const SoA3& a, const std::vector<std::uint32_t>& idx, std::vector<double>& out) {
  const std::size_t n = idx.size();
  out.resize(3 * n);
  double* w = out.data();
  const std::vector<double>* lanes[3] = {&a.xs(), &a.ys(), &a.zs()};
  for (const auto* lane : lanes) {
    const double* src = lane->data();
    for (std::size_t k = 0; k < n; ++k) w[k] = src[idx[k]];
    w += n;
  }
}

void accumulate_lanes(SoA3& a, const std::vector<std::uint32_t>& idx,
                      const std::vector<double>& in) {
  const std::size_t n = idx.size();
  check_size(in.size(), 3 * n, "reverse exchange");
  const double* r = in.data();
  std::vector<double>* lanes[3] = {&a.xs(), &a.ys(), &a.zs()};
  for (auto* lane : lanes) {
    double* dst = lane->data();
    for (std::size_t k = 0; k < n; ++k) dst[idx[k]] += r[k];
    r += n;
  }
}

}  // namespace dpd::exchange
