#pragma once
// Spatial decomposition of the (possibly periodic) DPD box into a uniform
// px x py x pz grid of subdomains, one per xmp rank (the paper runs the
// atomistic side this way across thousands of MPI ranks; see docs/PERF.md
// "Distributed DPD"). The class is pure geometry — ownership of a particle
// is "its position falls inside my subdomain", halo membership is "within
// halo_width of your subdomain under the box periodicity" — and every rank
// constructs an identical instance, so all placement decisions are
// replicated instead of communicated.

#include <array>
#include <vector>

#include "dpd/types.hpp"

namespace dpd::exchange {

/// Process-grid dimensions. count()==0 (the default) asks for auto_dims().
struct GridDims {
  int px = 0, py = 0, pz = 0;
  int count() const { return px * py * pz; }
};

/// Factor `nranks` into a grid minimizing per-subdomain surface (ghost
/// traffic) for the given box aspect: among all factorizations the one with
/// the smallest ly*lz + lx*lz + lx*ly wins, ties broken towards splitting
/// the longest axis.
GridDims auto_dims(int nranks, const Vec3& box);

/// Half-open axis-aligned slab of the box: lo <= p < hi per axis.
struct Subdomain {
  Vec3 lo{}, hi{};
};

class Decomposition {
public:
  /// Throws std::invalid_argument when dims.count() != nranks or any
  /// dimension is non-positive, and when halo_width <= 0. Cut planes start
  /// uniform; rebalance()/set_bounds() move them.
  Decomposition(const Vec3& box, const std::array<bool, 3>& periodic, GridDims dims,
                double halo_width);

  int nranks() const { return dims_.count(); }
  const GridDims& dims() const { return dims_; }
  double halo_width() const { return halo_; }
  const Vec3& box() const { return box_; }

  std::array<int, 3> coords_of(int rank) const;
  int rank_at(int cx, int cy, int cz) const;  ///< periodic wrap / clamp per axis
  Subdomain subdomain(int rank) const;

  /// Owning rank of a position (clamped into the box on non-periodic axes,
  /// wrapped on periodic ones).
  int rank_of_position(const Vec3& p) const;

  /// Ranks (ascending, excluding `rank`) whose subdomain lies within
  /// halo_width of rank's subdomain under the box periodicity — the only
  /// ranks halo/migration traffic can flow to or from.
  const std::vector<int>& neighbors(int rank) const { return neighbors_[static_cast<std::size_t>(rank)]; }

  /// Squared distance from p to rank's subdomain (0 inside), taking the
  /// shorter way around on periodic axes.
  double dist2_to_subdomain(const Vec3& p, int rank) const;

  /// Must rank `dst` hold a ghost image of a particle at p?
  bool in_halo_of(const Vec3& p, int dst) const {
    return dist2_to_subdomain(p, dst) < halo_ * halo_;
  }

  /// Per-axis slab boundaries: dims+1 ascending values from 0 to the box
  /// length. Subdomain membership, neighbor sets and halo tests all derive
  /// from these, so they stay mutually consistent when cuts move.
  const std::vector<double>& bounds(int axis) const {
    return cuts_[static_cast<std::size_t>(axis)];
  }
  /// Replace one axis's boundaries (size dims+1, strictly ascending, first 0
  /// and last the box length — throws std::invalid_argument otherwise) and
  /// rebuild the neighbor sets. Every rank must apply identical bounds: the
  /// decomposition is replicated, never communicated.
  void set_bounds(int axis, const std::vector<double>& b);

  /// Move interior cut planes toward equal per-slab particle counts, one
  /// axis at a time, from per-axis position histograms (hist[a][b] = global
  /// count of particles whose axis-a coordinate falls in bin b of a uniform
  /// binning of [0, box length)). Each cut targets the marginal quantile of
  /// its slab index but moves at most `max_shift_fraction * halo_width` per
  /// call — the bound that keeps every post-rebalance migration inside the
  /// new neighbor shell — and slabs keep a minimum width of half the
  /// smaller of halo_width and the uniform slab. Returns true when any cut
  /// moved (callers must then migrate ownership and re-ship ghosts).
  bool rebalance(const std::array<std::vector<double>, 3>& hist,
                 double max_shift_fraction = 0.9);

private:
  void rebuild_neighbors();

  Vec3 box_{};
  std::array<bool, 3> periodic_{};
  GridDims dims_{};
  double halo_ = 0.0;
  std::array<std::vector<double>, 3> cuts_;  // per axis: dims+1 boundaries
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace dpd::exchange
