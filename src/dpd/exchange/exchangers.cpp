#include "dpd/exchange/exchangers.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "dpd/exchange/packers.hpp"
#include "telemetry/registry.hpp"

namespace dpd::exchange {

telemetry::TagClasses comm_tag_classes() {
  telemetry::TagClasses c;
  c.add(kTagMigrate, "dpd.migrate");
  c.add(kTagHaloBuild, "dpd.halo.build");
  c.add(kTagHaloUpdate, "dpd.halo.update");
  c.add(kTagReverse, "dpd.reverse");
  c.add(kTagHaloAsync, "dpd.halo.async");
  return c;
}

namespace {
bool gid_less(const ParticleRecord& a, const ParticleRecord& b) { return a.gid < b.gid; }

/// Reinterpret a received byte payload as doubles in reusable scratch (the
/// fast path keeps one scratch vector warm instead of allocating per recv).
void recv_into(const std::vector<std::uint8_t>& raw, std::vector<double>& out) {
  if (raw.size() % sizeof(double) != 0)
    throw std::runtime_error("exchange: halo payload of " + std::to_string(raw.size()) +
                             " bytes is not a whole number of doubles");
  out.resize(raw.size() / sizeof(double));
  // lint: memcpy-ok (byte payload reinterpreted into the double scratch)
  if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
}
}  // namespace

std::vector<ParticleRecord> MigrationExchanger::exchange(
    std::vector<ParticleRecord> owned) const {
  const int me = comm_.rank();
  const auto& nbrs = decomp_->neighbors(me);
  std::unordered_map<int, std::size_t> slot;  // neighbour rank -> outbox slot
  for (std::size_t k = 0; k < nbrs.size(); ++k) slot[nbrs[k]] = k;
  std::vector<std::vector<ParticleRecord>> outbox(nbrs.size());

  std::vector<ParticleRecord> kept;
  kept.reserve(owned.size());
  std::size_t moved = 0;
  for (const ParticleRecord& r : owned) {
    const int dst = decomp_->rank_of_position(r.pos);
    if (dst == me) {
      kept.push_back(r);
      continue;
    }
    const auto it = slot.find(dst);
    if (it == slot.end())
      throw std::runtime_error(
          "exchange: particle gid " + std::to_string(r.gid) + " migrated from rank " +
          std::to_string(me) + " past the neighbour shell to rank " + std::to_string(dst) +
          " (subdomains are too small for the per-rebuild drift; coarsen the grid or raise "
          "halo_width)");
    outbox[it->second].push_back(r);
    ++moved;
  }
  for (std::size_t k = 0; k < nbrs.size(); ++k) comm_.send(nbrs[k], kTagMigrate, outbox[k]);
  for (int d : nbrs) {
    auto in = comm_.recv<ParticleRecord>(d, kTagMigrate);
    kept.insert(kept.end(), in.begin(), in.end());
  }
  telemetry::count("dpd.migrate.count", static_cast<double>(moved));
  std::sort(kept.begin(), kept.end(), gid_less);
  return kept;
}

std::vector<ParticleRecord> HaloExchanger::build(const std::vector<ParticleRecord>& owned) {
  const int me = comm_.rank();
  const auto& nbrs = decomp_->neighbors(me);
  send_.assign(nbrs.size(), {});
  recv_.assign(nbrs.size(), {});

  // ship boundary records (flagged as ghosts) to every neighbour whose
  // subdomain is within halo_width of them; remember the shipped gids so the
  // send plan can be resolved to slots in the merged layout below
  std::vector<std::vector<std::uint32_t>> sent_gids(nbrs.size());
  std::size_t shipped = 0, bytes = 0;
  {
    std::vector<ParticleRecord> out;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      out.clear();
      for (const ParticleRecord& r : owned)
        if (decomp_->in_halo_of(r.pos, nbrs[k])) {
          out.push_back(r);
          out.back().ghost = 1;
          sent_gids[k].push_back(r.gid);
        }
      comm_.send(nbrs[k], kTagHaloBuild, out);
      shipped += out.size();
      bytes += out.size() * sizeof(ParticleRecord);
    }
  }

  std::vector<ParticleRecord> merged = owned;
  std::vector<std::vector<std::uint32_t>> got_gids(nbrs.size());
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    auto in = comm_.recv<ParticleRecord>(nbrs[k], kTagHaloBuild);
    for (const ParticleRecord& r : in) got_gids[k].push_back(r.gid);
    merged.insert(merged.end(), in.begin(), in.end());
  }
  std::sort(merged.begin(), merged.end(), gid_less);

  std::unordered_map<std::uint32_t, std::uint32_t> local;
  local.reserve(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i)
    local[merged[i].gid] = static_cast<std::uint32_t>(i);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    for (std::uint32_t g : sent_gids[k]) send_[k].push_back(local.at(g));
    for (std::uint32_t g : got_gids[k]) recv_[k].push_back(local.at(g));
  }
  telemetry::count("dpd.halo.particles", static_cast<double>(shipped));
  telemetry::count("dpd.halo.bytes", static_cast<double>(bytes));
  return merged;
}

void HaloExchanger::update(DpdSystem& sys) {
  const auto& nbrs = decomp_->neighbors(comm_.rank());
  std::size_t shipped = 0, bytes = 0;
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    pack_posvel(sys.positions(), sys.velocities(), send_[k], pack_buf_);
    comm_.send(nbrs[k], kTagHaloUpdate, pack_buf_);
    shipped += send_[k].size();
    bytes += pack_buf_.size() * sizeof(double);
  }
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    recv_into(comm_.recv_bytes(nbrs[k], kTagHaloUpdate), recv_buf_);
    unpack_posvel(sys.positions(), sys.velocities(), recv_[k], recv_buf_);
  }
  telemetry::count("dpd.halo.particles", static_cast<double>(shipped));
  telemetry::count("dpd.halo.bytes", static_cast<double>(bytes));
}

void HaloExchanger::begin_update(DpdSystem& sys) {
  const auto& nbrs = decomp_->neighbors(comm_.rank());
  if (!send_pending_.empty() || !recv_pending_.empty())
    throw std::logic_error("exchange: begin_update while a halo update is already in flight");
  std::size_t shipped = 0, bytes = 0;
  recv_pending_.reserve(nbrs.size());
  send_pending_.reserve(nbrs.size());
  for (std::size_t k = 0; k < nbrs.size(); ++k)
    recv_pending_.push_back(comm_.irecv_bytes(nbrs[k], kTagHaloAsync));
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    pack_posvel(sys.positions(), sys.velocities(), send_[k], pack_buf_);
    send_pending_.push_back(comm_.isend_bytes(nbrs[k], kTagHaloAsync, pack_buf_.data(),
                                              pack_buf_.size() * sizeof(double)));
    shipped += send_[k].size();
    bytes += pack_buf_.size() * sizeof(double);
  }
  telemetry::count("dpd.halo.particles", static_cast<double>(shipped));
  telemetry::count("dpd.halo.bytes", static_cast<double>(bytes));
}

void HaloExchanger::finish_update(DpdSystem& sys) {
  const auto& nbrs = decomp_->neighbors(comm_.rank());
  if (recv_pending_.size() != nbrs.size())
    throw std::logic_error("exchange: finish_update without a matching begin_update");
  for (auto& p : send_pending_) p.wait();
  send_pending_.clear();
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    recv_into(recv_pending_[k].wait(), recv_buf_);
    unpack_posvel(sys.positions(), sys.velocities(), recv_[k], recv_buf_);
  }
  recv_pending_.clear();
}

void HaloExchanger::reverse(DpdSystem& sys) {
  const auto& nbrs = decomp_->neighbors(comm_.rank());
  std::size_t bytes = 0;
  // ghosts on this rank came from nbrs[k]; their accumulated pair forces go
  // home along the recv plan and land additively on the owner's send plan
  // (same particles, same order, by construction in build())
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    pack_lanes(sys.forces(), recv_[k], pack_buf_);
    comm_.send(nbrs[k], kTagReverse, pack_buf_);
    bytes += pack_buf_.size() * sizeof(double);
  }
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    recv_into(comm_.recv_bytes(nbrs[k], kTagReverse), recv_buf_);
    accumulate_lanes(sys.forces(), send_[k], recv_buf_);
  }
  telemetry::count("dpd.reverse.bytes", static_cast<double>(bytes));
}

}  // namespace dpd::exchange
