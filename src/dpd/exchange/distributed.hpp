#pragma once
// DistributedDpd — the domain-decomposition driver tying a per-rank
// DpdSystem to the exchange machinery (the ExchangeHook installed into the
// engine's step loop). Protocol per force evaluation:
//
//   refresh():  allreduce the max owned displacement since the last rebuild;
//               below skin/2 the halo fast path ships packed pos/vel lanes
//               for the planned boundary slots, above it ownership migrates
//               (MigrationExchanger), the halo is rebuilt from whole records
//               (HaloExchanger::build) and the local arrays are re-laid out
//               sorted by gid.
//   after_pairs() [HaloMode::ReverseOnce only]: ship ghost-accumulated pair
//               forces home (HaloExchanger::reverse).
//
// Equivalence guarantee (the tentpole gate, pinned in
// tests/dpd_exchange_test.cpp and docs/PERF.md): under HaloMode::Symmetric
// every cross-boundary pair is computed on both ranks (compute-twice, ghost
// rows discarded), local arrays are kept sorted by gid with a complete
// rc+skin halo, and the engine's canonical CSR pair order plus gid-keyed
// pair RNG then reproduce the single-rank per-particle floating-point
// accumulation order exactly — N-rank trajectories are bitwise equal to the
// single-rank run, independent of rebuild cadence. HaloMode::ReverseOnce
// computes each cross-boundary pair once (on the owner of the lower gid)
// and reverse-ships the other half; the changed accumulation order leaves
// O(1 ulp) differences, pinned by tolerance instead.

#include <chrono>
#include <cstdint>
#include <vector>

#include "dpd/exchange/decomposition.hpp"
#include "dpd/exchange/exchangers.hpp"
#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "xmp/comm.hpp"

namespace dpd::exchange {

enum class HaloMode : std::uint8_t {
  Symmetric,    ///< cross-boundary pairs computed on both ranks; bitwise-equal
  ReverseOnce,  ///< computed once, forces reverse-shipped; tolerance-equal
};

struct DistOptions {
  GridDims dims{};  ///< process grid; default (count()==0) auto-factors
  HaloMode mode = HaloMode::Symmetric;
  /// Ghost shell thickness; 0 means rc + skin (the pair-completeness
  /// minimum). Raise to max module cutoff + skin when a force module
  /// (platelet adhesion, long bonds) reaches beyond rc.
  double halo_width = 0.0;
  /// Overlap halo communication with interior pair computation: the fast
  /// path posts nonblocking lanes (HaloExchanger::begin_update) and the
  /// engine computes interior neighbor-list rows while they fly, completing
  /// the exchange only before the boundary rows. Bitwise-neutral under
  /// either HaloMode (see docs/PERF.md "Overlapped halos").
  bool overlap = false;
  /// When > 0, every Nth refresh measures owned-count imbalance and — above
  /// rebalance_threshold — shifts the decomposition's cut planes toward
  /// equal counts (Decomposition::rebalance) followed by a full rebuild.
  /// Trajectory-neutral, like any forced rebuild.
  int rebalance_every = 0;
  /// Trigger rebalancing when max owned count exceeds this multiple of the
  /// mean.
  double rebalance_threshold = 1.2;
};

/// Bitwise trajectory digest (FNV-1a over gid-sorted owned gid/pos/vel) of
/// one system — the single-rank side of the equivalence gate.
std::uint64_t trajectory_digest(const DpdSystem& sys);

class DistributedDpd final : public ExchangeHook {
public:
  /// Installs itself as the system's exchange hook and enables the ghost
  /// pair filter. The system must outlive this driver.
  DistributedDpd(const xmp::Comm& comm, DpdSystem& sys, DistOptions opt = {});
  ~DistributedDpd() override;

  /// Partition a *replicated* initial population: every rank must hold the
  /// identical full particle set (same deterministic setup code); each
  /// keeps what falls inside its subdomain and builds the first halo.
  /// Collective; call once before stepping.
  void distribute();

  void refresh(DpdSystem& sys) override;
  bool overlap_pending() const override { return overlap_pending_; }
  void finish_refresh(DpdSystem& sys) override;
  void after_pairs(DpdSystem& sys) override;

  /// Measure owned-count imbalance (max/mean over ranks, allreduced) and,
  /// above options().rebalance_threshold, move the decomposition's cut
  /// planes toward equal per-slab counts and migrate ownership to the new
  /// layout. Collective; returns true when the layout changed (the halo and
  /// plans are then freshly rebuilt). Called automatically every
  /// rebalance_every refreshes when that option is set.
  bool rebalance();

  const Decomposition& decomposition() const { return decomp_; }
  const DistOptions& options() const { return opt_; }

  /// All owned records of the run, gathered to `root` and sorted by gid
  /// (empty on other ranks). Collective.
  std::vector<ParticleRecord> gather(int root = 0) const;
  /// trajectory_digest of the whole distributed population — equal on every
  /// rank, and equal to the single-rank digest under HaloMode::Symmetric.
  /// Collective.
  std::uint64_t global_digest() const;

  // --- collective diagnostics over owned particles ---
  double kinetic_temperature() const;
  Vec3 total_momentum() const;
  std::int64_t global_count() const;

  /// Replicate owner-decided platelet state transitions to every rank's
  /// slot table (call right after model.update(sys)); freezes local copies
  /// of Bound platelets. Collective.
  void sync_platelets(PlateletModel& model);

  /// Checkpoint the driver: decomposition layout + halo mode (validated on
  /// load) and the current cut planes (restored, so a post-rebalance restart
  /// migrates under the decomposition that actually owns the particles) —
  /// plans and displacement references are rebuilt, so load forces a full
  /// rebuild at the next refresh, which is trajectory-neutral (see
  /// docs/PERF.md). The per-rank particle state lives in
  /// DpdSystem::save_state.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  void full_rebuild(DpdSystem& sys);
  void capture_ref(const DpdSystem& sys);
  std::vector<ParticleRecord> owned_records(const DpdSystem& sys) const;

  // analyze: no-checkpoint (rank-affine communicator handle, re-supplied on restart)
  xmp::Comm comm_;
  // analyze: no-checkpoint (borrowed engine; checkpoints separately)
  DpdSystem& sys_;
  DistOptions opt_;  ///< layout + mode; serialised for restart validation
  Decomposition decomp_;  ///< geometry from opt_; moved cut planes serialised
  // analyze: no-checkpoint (stateless protocol object)
  MigrationExchanger migrate_;
  // analyze: no-checkpoint (plans rebuilt by the forced post-load rebuild)
  HaloExchanger halo_;
  bool distributed_ = false;  ///< serialised: has distribute()/load run?
  // analyze: no-checkpoint (load_state forces the rebuild that repopulates it)
  bool rebuild_pending_ = false;
  // analyze: no-checkpoint (displacement reference, recaptured at every rebuild)
  std::vector<Vec3> ref_pos_;
  // analyze: no-checkpoint (in-flight overlap state never spans a checkpoint)
  bool overlap_pending_ = false;
  // analyze: no-checkpoint (telemetry timestamp for dpd.halo.overlap_us)
  std::chrono::steady_clock::time_point overlap_t0_{};
  // analyze: no-checkpoint (replicated cadence counter; restart restarts it identically everywhere)
  std::uint64_t refresh_count_ = 0;
};

}  // namespace dpd::exchange
