#pragma once
// The three exchangers of the decomposition driver (Mirheo-style
// exchanger/packer split, ROADMAP item 2):
//
//   MigrationExchanger — transfers *ownership*: after a rebuild trigger,
//     records whose position left the subdomain travel to the neighbour
//     rank that now contains them.
//   HaloExchanger — builds and refreshes *ghosts*: owned particles within
//     halo_width of a neighbour subdomain are replicated there. A full
//     build() ships whole ParticleRecords and plans the index lists; the
//     per-force-pass update() then ships only packed pos/vel lanes for the
//     planned slots, and reverse() ships ghost-accumulated force lanes back
//     along the same plan (ReverseOnce mode).
//
// All traffic is tagged point-to-point between decomposition neighbours
// (kTag*), counted in telemetry (dpd.halo.particles / dpd.halo.bytes /
// dpd.migrate.count) and classifiable in a CommMatrix via comm_tag_classes().

#include <cstdint>
#include <vector>

#include "dpd/exchange/decomposition.hpp"
#include "dpd/system.hpp"
#include "telemetry/comm_matrix.hpp"
#include "xmp/comm.hpp"

namespace dpd::exchange {

inline constexpr int kTagMigrate = 7101;
inline constexpr int kTagHaloBuild = 7102;
inline constexpr int kTagHaloUpdate = 7103;
inline constexpr int kTagReverse = 7104;
inline constexpr int kTagHaloAsync = 7105;

/// Tag classes attributing exchange traffic in a telemetry::CommMatrix.
telemetry::TagClasses comm_tag_classes();

class MigrationExchanger {
public:
  MigrationExchanger(const xmp::Comm& comm, const Decomposition& decomp)
      : comm_(comm), decomp_(&decomp) {}

  /// Re-home `owned` by current position: records leaving this rank's
  /// subdomain are sent to their new owner, arrivals merged in; returns the
  /// post-migration owned set sorted by gid. Collective over the neighbour
  /// set. Throws when a particle skipped past the neighbour shell (moved
  /// further than halo_width since the last rebuild — the decomposition is
  /// too fine for the timestep).
  std::vector<ParticleRecord> exchange(std::vector<ParticleRecord> owned) const;

private:
  xmp::Comm comm_;
  const Decomposition* decomp_;
};

class HaloExchanger {
public:
  HaloExchanger(const xmp::Comm& comm, const Decomposition& decomp)
      : comm_(comm), decomp_(&decomp) {}

  /// Full halo rebuild from the gid-sorted owned set: ships copies of
  /// boundary particles to every neighbour whose subdomain they are within
  /// halo_width of, returns owned + received ghosts sorted by gid, and
  /// records the send/recv slot plans that update()/reverse() replay.
  std::vector<ParticleRecord> build(const std::vector<ParticleRecord>& owned);

  /// Fast path between rebuilds: ship current pos/vel of the planned
  /// boundary slots, scatter into the planned ghost slots. The system's
  /// local layout must be unchanged since the last build().
  void update(DpdSystem& sys);

  /// Split-phase update for comm/compute overlap: begin_update packs every
  /// neighbour lane and posts it as nonblocking isend/irecv on
  /// kTagHaloAsync, returning while the messages are in flight;
  /// finish_update completes the handles and scatters the fresh ghost
  /// pos/vel. Exactly one finish_update must follow every begin_update
  /// before the next update of any flavour (checked xmp builds flag
  /// dropped handles). Ghost slots hold stale positions in between — the
  /// caller may only touch owned-only work there.
  void begin_update(DpdSystem& sys);
  void finish_update(DpdSystem& sys);

  /// Ship the forces accumulated on ghost slots back to their owners and
  /// add them there (ReverseOnce mode; call while frc holds only pair
  /// contributions).
  void reverse(DpdSystem& sys);

  /// Ghost slots per neighbour rank, in plan order (tests/diagnostics).
  const std::vector<std::vector<std::uint32_t>>& recv_plan() const { return recv_; }
  const std::vector<std::vector<std::uint32_t>>& send_plan() const { return send_; }

private:
  xmp::Comm comm_;
  const Decomposition* decomp_;
  // Per neighbour (parallel to decomp_->neighbors(rank)): local slots whose
  // pos/vel we ship there / local ghost slots filled from there.
  std::vector<std::vector<std::uint32_t>> send_, recv_;
  // hoisted per-call scratch: the fast path runs every force pass and must
  // not allocate once the plans have warmed these up
  std::vector<double> pack_buf_, recv_buf_;
  // in-flight handles between begin_update and finish_update
  std::vector<xmp::Pending> send_pending_, recv_pending_;
};

}  // namespace dpd::exchange
