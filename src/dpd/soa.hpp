#pragma once
// Structure-of-arrays particle storage (the PR's SoA refactor, cf. Mirheo's
// core/pvs/): the engine keeps positions/velocities/forces as three flat
// double lanes (x_, y_, z_) so the pair-gather loop, the halo/migration
// packers and the AVX2 force kernel stream contiguous memory, while a thin
// Vec3Ref proxy keeps every existing call site (`pos[i].x`, `vel[i] += dv`,
// range-for) source-compatible with the old std::vector<Vec3> interface.

#include <cstddef>
#include <vector>

#include "dpd/types.hpp"

namespace dpd {

/// Mutable view of one SoA slot, convertible to/assignable from Vec3.
struct Vec3Ref {
  double& x;
  double& y;
  double& z;

  operator Vec3() const { return {x, y, z}; }
  Vec3Ref& operator=(const Vec3& v) {
    x = v.x;
    y = v.y;
    z = v.z;
    return *this;
  }
  Vec3Ref& operator=(const Vec3Ref& o) { return *this = Vec3(o); }
  Vec3Ref& operator+=(const Vec3& v) {
    x += v.x;
    y += v.y;
    z += v.z;
    return *this;
  }
  Vec3Ref& operator-=(const Vec3& v) {
    x -= v.x;
    y -= v.y;
    z -= v.z;
    return *this;
  }
  Vec3 operator+(const Vec3& v) const { return Vec3(*this) + v; }
  Vec3 operator-(const Vec3& v) const { return Vec3(*this) - v; }
  Vec3 operator*(double s) const { return Vec3(*this) * s; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return x * x + y * y + z * z; }
  double norm() const { return Vec3(*this).norm(); }
};

struct ConstVec3Ref {
  const double& x;
  const double& y;
  const double& z;

  operator Vec3() const { return {x, y, z}; }
  Vec3 operator+(const Vec3& v) const { return Vec3(*this) + v; }
  Vec3 operator-(const Vec3& v) const { return Vec3(*this) - v; }
  Vec3 operator*(double s) const { return Vec3(*this) * s; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return x * x + y * y + z * z; }
  double norm() const { return Vec3(*this).norm(); }
};

/// Three flat double lanes addressed as one array of Vec3-like slots.
class SoA3 {
public:
  SoA3() = default;
  explicit SoA3(std::size_t n) { resize(n); }

  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }
  void resize(std::size_t n) {
    x_.resize(n);
    y_.resize(n);
    z_.resize(n);
  }
  void assign(std::size_t n, const Vec3& v) {
    x_.assign(n, v.x);
    y_.assign(n, v.y);
    z_.assign(n, v.z);
  }
  void clear() {
    x_.clear();
    y_.clear();
    z_.clear();
  }
  void reserve(std::size_t n) {
    x_.reserve(n);
    y_.reserve(n);
    z_.reserve(n);
  }
  void push_back(const Vec3& v) {
    x_.push_back(v.x);
    y_.push_back(v.y);
    z_.push_back(v.z);
  }

  Vec3Ref operator[](std::size_t i) { return {x_[i], y_[i], z_[i]}; }
  ConstVec3Ref operator[](std::size_t i) const { return {x_[i], y_[i], z_[i]}; }
  Vec3 get(std::size_t i) const { return {x_[i], y_[i], z_[i]}; }
  void set(std::size_t i, const Vec3& v) {
    x_[i] = v.x;
    y_[i] = v.y;
    z_[i] = v.z;
  }

  // raw lane access (pack/unpack, SIMD gather loops, checkpoint codec)
  std::vector<double>& xs() { return x_; }
  std::vector<double>& ys() { return y_; }
  std::vector<double>& zs() { return z_; }
  const std::vector<double>& xs() const { return x_; }
  const std::vector<double>& ys() const { return y_; }
  const std::vector<double>& zs() const { return z_; }

  void swap(SoA3& o) {
    x_.swap(o.x_);
    y_.swap(o.y_);
    z_.swap(o.z_);
  }

  /// Proxy iterator so range-for over positions()/velocities() keeps working.
  template <class S, class Ref>
  struct Iter {
    S* soa;
    std::size_t i;
    Ref operator*() const { return (*soa)[i]; }
    Iter& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const Iter& o) const { return i != o.i; }
    bool operator==(const Iter& o) const { return i == o.i; }
  };
  auto begin() { return Iter<SoA3, Vec3Ref>{this, 0}; }
  auto end() { return Iter<SoA3, Vec3Ref>{this, size()}; }
  auto begin() const { return Iter<const SoA3, ConstVec3Ref>{this, 0}; }
  auto end() const { return Iter<const SoA3, ConstVec3Ref>{this, size()}; }

private:
  std::vector<double> x_, y_, z_;
};

inline void swap(SoA3& a, SoA3& b) { a.swap(b); }

}  // namespace dpd
