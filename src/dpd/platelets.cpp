#include "dpd/platelets.hpp"

#include "resilience/blob.hpp"

#include <cmath>
#include <stdexcept>

namespace dpd {

PlateletModel::PlateletModel(PlateletParams p) : prm_(std::move(p)) {
  if (!prm_.adhesive_region)
    prm_.adhesive_region = [](const Vec3&) { return true; };
}

void PlateletModel::add_platelet(std::size_t particle_index) {
  particles_.push_back(particle_index);
  state_.push_back(PlateletState::Passive);
  trigger_time_.push_back(-1.0);
}

void PlateletModel::seed_platelets(DpdSystem& sys, std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  const auto& box = sys.params().box;
  std::uniform_real_distribution<double> ux(0.0, box.x), uy(0.0, box.y), uz(0.0, box.z);
  std::normal_distribution<double> th(0.0, std::sqrt(sys.params().kBT));
  std::size_t placed = 0, attempts = 0;
  while (placed < count && attempts < 1000 * count) {
    ++attempts;
    Vec3 p{ux(rng), uy(rng), uz(rng)};
    if (sys.geometry().sdf(p) < 1.0) continue;
    add_platelet(sys.add_particle(p, {th(rng), th(rng), th(rng)}, kPlatelet));
    ++placed;
  }
  if (placed < count) throw std::runtime_error("seed_platelets: domain too small");
}

void PlateletModel::add_forces(DpdSystem& sys) {
  auto& pos = sys.positions();
  auto& frc = sys.forces();
  const std::size_t np = particles_.size();

  // platelet-platelet adhesion (Active/Bound only); O(np^2) is fine at the
  // platelet counts used here (they are ~0.1% of particles, as in blood)
  for (std::size_t a = 0; a < np; ++a) {
    if (state_[a] != PlateletState::Active && state_[a] != PlateletState::Bound) continue;
    for (std::size_t b = a + 1; b < np; ++b) {
      if (state_[b] != PlateletState::Active && state_[b] != PlateletState::Bound) continue;
      const std::size_t i = particles_[a], j = particles_[b];
      const Vec3 dr = sys.min_image(pos[i], pos[j]);
      const double r = dr.norm();
      if (r > prm_.adhesion_cutoff || r < 1e-9) continue;
      // Morse force magnitude (positive = attraction towards r0)
      const double e = std::exp(-prm_.morse_beta * (r - prm_.morse_r0));
      const double f = 2.0 * prm_.morse_D * prm_.morse_beta * (e * e - e);
      // f > 0 for r < r0 (repulsion), f < 0 for r > r0 (attraction):
      // force on i along -er scaled by f
      const Vec3 er = dr * (1.0 / r);
      frc[i] -= er * f;
      frc[j] += er * f;
    }
  }

  // active platelets are pulled towards adhesive wall regions
  for (std::size_t a = 0; a < np; ++a) {
    if (state_[a] != PlateletState::Active) continue;
    const std::size_t i = particles_[a];
    if (!prm_.adhesive_region(pos[i])) continue;
    const double d = sys.geometry().sdf(pos[i]);
    if (d > prm_.adhesion_cutoff) continue;
    frc[i] -= sys.geometry().normal(pos[i]) * prm_.wall_pull;
  }
}

void PlateletModel::on_remap(const std::vector<long>& new_index) {
  std::vector<std::size_t> np_;
  std::vector<PlateletState> ns_;
  std::vector<double> nt_;
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    const long ni = new_index[particles_[k]];
    if (ni < 0) continue;
    np_.push_back(static_cast<std::size_t>(ni));
    ns_.push_back(state_[k]);
    nt_.push_back(trigger_time_[k]);
  }
  particles_ = std::move(np_);
  state_ = std::move(ns_);
  trigger_time_ = std::move(nt_);
}

void PlateletModel::update(DpdSystem& sys) {
  const double t = sys.time();
  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    const std::size_t i = particles_[k];
    switch (state_[k]) {
      case PlateletState::Passive:
        if (prm_.adhesive_region(pos[i]) &&
            sys.geometry().sdf(pos[i]) < prm_.trigger_distance) {
          state_[k] = PlateletState::Triggered;
          trigger_time_[k] = t;
        }
        break;
      case PlateletState::Triggered:
        if (t - trigger_time_[k] >= prm_.activation_delay)
          state_[k] = PlateletState::Active;
        break;
      case PlateletState::Active: {
        const double speed = vel[i].norm();
        bool arrest = false;
        if (prm_.adhesive_region(pos[i]) &&
            sys.geometry().sdf(pos[i]) < prm_.bind_distance && speed < prm_.bind_speed)
          arrest = true;
        if (!arrest && speed < prm_.bind_speed) {
          // arrest onto an already-bound platelet (thrombus growth)
          for (std::size_t b = 0; b < particles_.size(); ++b) {
            if (state_[b] != PlateletState::Bound) continue;
            if (sys.min_image(pos[i], pos[particles_[b]]).norm() < prm_.bind_distance) {
              arrest = true;
              break;
            }
          }
        }
        if (arrest) {
          state_[k] = PlateletState::Bound;
          sys.frozen()[i] = 1;
          vel[i] = {};
        }
        break;
      }
      case PlateletState::Bound:
        break;
    }
  }
}

std::size_t PlateletModel::count(PlateletState s) const {
  std::size_t c = 0;
  for (PlateletState st : state_)
    if (st == s) ++c;
  return c;
}

void PlateletModel::save_state(resilience::BlobWriter& w) const {
  w.vec(particles_);
  w.vec(state_);
  w.vec(trigger_time_);
}

void PlateletModel::load_state(resilience::BlobReader& r) {
  particles_ = r.vec<std::size_t>();
  state_ = r.vec<PlateletState>();
  trigger_time_ = r.vec<double>();
  if (state_.size() != particles_.size() || trigger_time_.size() != particles_.size())
    throw resilience::CorruptError("PlateletModel: inconsistent array lengths in checkpoint");
}

}  // namespace dpd
