#include "dpd/platelets.hpp"

#include "resilience/blob.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpd {

PlateletModel::PlateletModel(PlateletParams p) : prm_(std::move(p)) {
  if (!prm_.adhesive_region)
    prm_.adhesive_region = [](const Vec3&) { return true; };
}

void PlateletModel::add_platelet(std::uint32_t gid) {
  index_of_[gid] = particles_.size();
  particles_.push_back(gid);
  state_.push_back(PlateletState::Passive);
  trigger_time_.push_back(-1.0);
}

void PlateletModel::rebuild_index() {
  index_of_.clear();
  for (std::size_t k = 0; k < particles_.size(); ++k) index_of_[particles_[k]] = k;
}

void PlateletModel::seed_platelets(DpdSystem& sys, std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  const auto& box = sys.params().box;
  std::uniform_real_distribution<double> ux(0.0, box.x), uy(0.0, box.y), uz(0.0, box.z);
  std::normal_distribution<double> th(0.0, std::sqrt(sys.params().kBT));
  std::size_t placed = 0, attempts = 0;
  while (placed < count && attempts < 1000 * count) {
    ++attempts;
    Vec3 p{ux(rng), uy(rng), uz(rng)};
    if (sys.geometry().sdf(p) < 1.0) continue;
    add_platelet(sys.gid_of(sys.add_particle(p, {th(rng), th(rng), th(rng)}, kPlatelet)));
    ++placed;
  }
  if (placed < count) throw std::runtime_error("seed_platelets: domain too small");
}

void PlateletModel::add_forces(DpdSystem& sys) {
  auto& pos = sys.positions();
  auto& frc = sys.forces();
  const auto& ghost = sys.ghost_mask();
  const std::size_t np = particles_.size();

  // platelet-platelet adhesion (Active/Bound only): candidates come from
  // the engine's cell grid instead of an all-platelet rescan. Each pair is
  // discovered once (from its lower-gid member) and the collected set is
  // applied in sorted gid order so the force accumulation stays
  // deterministic regardless of grid layout and of decomposition (the same
  // pair subsequence reaches an owned particle on every rank layout).
  sys.ensure_neighbors();
  adhesive_pairs_.clear();
  for (std::size_t a = 0; a < np; ++a) {
    if (state_[a] != PlateletState::Active && state_[a] != PlateletState::Bound) continue;
    const long la = sys.local_of(particles_[a]);
    if (la < 0) continue;  // not resident on this rank
    const auto i = static_cast<std::size_t>(la);
    const std::uint32_t gi = particles_[a];
    sys.query_neighbors(pos[i], prm_.adhesion_cutoff, [&](std::size_t j, const Vec3&, double) {
      const std::uint32_t gj = sys.gid_of(j);
      if (gj <= gi) return;
      const std::size_t b = platelet_of(gj);
      if (b == static_cast<std::size_t>(-1)) return;
      if (state_[b] != PlateletState::Active && state_[b] != PlateletState::Bound) return;
      adhesive_pairs_.emplace_back(gi, gj);
    });
  }
  std::sort(adhesive_pairs_.begin(), adhesive_pairs_.end());
  for (const auto& [gi, gj] : adhesive_pairs_) {
    // both endpoints resolved locally: discovery touched both slots
    const auto i = static_cast<std::size_t>(sys.local_of(gi));
    const auto j = static_cast<std::size_t>(sys.local_of(gj));
    const Vec3 dr = sys.min_image(pos[i], pos[j]);
    const double r = dr.norm();
    if (r > prm_.adhesion_cutoff || r < 1e-9) continue;
    // Morse force magnitude (positive = attraction towards r0)
    const double e = std::exp(-prm_.morse_beta * (r - prm_.morse_r0));
    const double f = 2.0 * prm_.morse_D * prm_.morse_beta * (e * e - e);
    // f > 0 for r < r0 (repulsion), f < 0 for r > r0 (attraction):
    // force on i along -er scaled by f
    const Vec3 er = dr * (1.0 / r);
    if (!ghost[i]) frc[i] -= er * f;
    if (!ghost[j]) frc[j] += er * f;
  }

  // active platelets are pulled towards adhesive wall regions
  for (std::size_t a = 0; a < np; ++a) {
    if (state_[a] != PlateletState::Active) continue;
    const long la = sys.local_of(particles_[a]);
    if (la < 0) continue;
    const auto i = static_cast<std::size_t>(la);
    if (ghost[i]) continue;  // per-particle term: the owner applies it
    if (!prm_.adhesive_region(pos[i])) continue;
    const double d = sys.geometry().sdf(pos[i]);
    if (d > prm_.adhesion_cutoff) continue;
    frc[i] -= sys.geometry().normal(pos[i]) * prm_.wall_pull;
  }
}

void PlateletModel::on_remove_gids(const std::vector<std::uint32_t>& gids) {
  std::vector<std::uint32_t> np_;
  std::vector<PlateletState> ns_;
  std::vector<double> nt_;
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    if (std::find(gids.begin(), gids.end(), particles_[k]) != gids.end()) continue;
    np_.push_back(particles_[k]);
    ns_.push_back(state_[k]);
    nt_.push_back(trigger_time_[k]);
  }
  particles_ = std::move(np_);
  state_ = std::move(ns_);
  trigger_time_ = std::move(nt_);
  rebuild_index();
}

void PlateletModel::update(DpdSystem& sys) {
  const double t = sys.time();
  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  const auto& ghost = sys.ghost_mask();
  // Two-phase: decide every transition against the pre-update states, then
  // apply. Arrest-onto-bound therefore sees last step's thrombus only —
  // independent of slot order and of which rank owns which platelet.
  next_state_ = state_;
  next_trigger_ = trigger_time_;
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    const long lk = sys.local_of(particles_[k]);
    if (lk < 0) continue;
    const auto i = static_cast<std::size_t>(lk);
    if (ghost[i]) continue;  // the owner decides this platelet's transitions
    switch (state_[k]) {
      case PlateletState::Passive:
        if (prm_.adhesive_region(pos[i]) &&
            sys.geometry().sdf(pos[i]) < prm_.trigger_distance) {
          next_state_[k] = PlateletState::Triggered;
          next_trigger_[k] = t;
        }
        break;
      case PlateletState::Triggered:
        if (t - trigger_time_[k] >= prm_.activation_delay)
          next_state_[k] = PlateletState::Active;
        break;
      case PlateletState::Active: {
        const double speed = Vec3(vel[i]).norm();
        bool arrest = false;
        if (prm_.adhesive_region(pos[i]) &&
            sys.geometry().sdf(pos[i]) < prm_.bind_distance && speed < prm_.bind_speed)
          arrest = true;
        if (!arrest && speed < prm_.bind_speed) {
          // arrest onto an already-bound platelet (thrombus growth); the
          // result is a boolean OR over candidates, so grid visit order
          // does not matter
          sys.query_neighbors(pos[i], prm_.bind_distance,
                              [&](std::size_t j, const Vec3&, double r2) {
                                if (arrest || j == i) return;
                                const std::size_t b = platelet_of(sys.gid_of(j));
                                if (b == static_cast<std::size_t>(-1)) return;
                                if (state_[b] != PlateletState::Bound) return;
                                if (r2 < prm_.bind_distance * prm_.bind_distance) arrest = true;
                              });
        }
        if (arrest) next_state_[k] = PlateletState::Bound;
        break;
      }
      case PlateletState::Bound:
        break;
    }
  }
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    if (next_state_[k] == PlateletState::Bound && state_[k] != PlateletState::Bound) {
      const long lk = sys.local_of(particles_[k]);
      if (lk >= 0) {
        const auto i = static_cast<std::size_t>(lk);
        sys.frozen()[i] = 1;
        vel[i] = {};
      }
    }
    state_[k] = next_state_[k];
    trigger_time_[k] = next_trigger_[k];
  }
}

std::size_t PlateletModel::count(PlateletState s) const {
  std::size_t c = 0;
  for (PlateletState st : state_)
    if (st == s) ++c;
  return c;
}

void PlateletModel::save_state(resilience::BlobWriter& w) const {
  w.vec(particles_);
  w.vec(state_);
  w.vec(trigger_time_);
}

void PlateletModel::load_state(resilience::BlobReader& r) {
  particles_ = r.vec<std::uint32_t>();
  state_ = r.vec<PlateletState>();
  trigger_time_ = r.vec<double>();
  if (state_.size() != particles_.size() || trigger_time_.size() != particles_.size())
    throw resilience::CorruptError("PlateletModel: inconsistent array lengths in checkpoint");
  rebuild_index();
}

}  // namespace dpd
