#include "dpd/geometry.hpp"

#include <algorithm>

namespace dpd {

Vec3 Geometry::normal(const Vec3& p) const {
  const double h = 1e-6;
  Vec3 n{(sdf({p.x + h, p.y, p.z}) - sdf({p.x - h, p.y, p.z})) / (2 * h),
         (sdf({p.x, p.y + h, p.z}) - sdf({p.x, p.y - h, p.z})) / (2 * h),
         (sdf({p.x, p.y, p.z + h}) - sdf({p.x, p.y, p.z - h})) / (2 * h)};
  const double nn = n.norm();
  if (nn < 1e-12) return {0, 0, 1};
  return n * (1.0 / nn);
}

double ChannelWithCavityZ::sdf(const Vec3& p) const {
  // Fluid region = channel slab  U  cavity box.
  // SDF of the union = max of the member SDFs (exact inside, approximate
  // near concave corners, which suffices for boundary forces).
  const double slab = std::min(p.z, H_ - p.z);
  // cavity box: x in (x0, x1), z in (H, H + depth) -- open to the channel
  // from below, so extend the box downwards to overlap the slab
  const double bx = std::min(p.x - x0_, x1_ - p.x);
  const double bz = std::min(p.z, H_ + depth_ - p.z);
  const double box = std::min(bx, bz);
  return std::max(slab, box);
}

}  // namespace dpd
