#pragma once
// Byte-stream codec for checkpoint payloads. Header-only and dependency-free
// so every solver library can serialise its own state (save_state /
// load_state members) without linking against the resilience runtime.
//
// Encoding: raw little-endian bytes of trivially copyable values, vectors as
// u64 count + raw elements, strings as u64 length + bytes. Every read is
// bounds-checked against the remaining payload and throws CorruptError on
// truncation — a damaged checkpoint must fail loudly, never read past the
// buffer. Versioning and integrity (CRC32) live one level up, in the
// snapshot file framing (snapshot.hpp).

#include <cstdint>
#include <cstring>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace resilience {

/// Base class of every checkpoint/restart failure.
struct SnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A stream is truncated, fails its CRC, or decodes to nonsense.
struct CorruptError : SnapshotError {
  using SnapshotError::SnapshotError;
};

/// The restart world/solver layout does not match the manifest.
struct LayoutError : SnapshotError {
  using SnapshotError::SnapshotError;
};

class BlobWriter {
public:
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  template <class T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof v);
  }

  /// u64 count followed by the raw elements.
  template <class T>
  void array(const T* p, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(n));
    if (n) bytes(p, n * sizeof(T));
  }

  template <class T>
  void vec(const std::vector<T>& v) {
    array(v.data(), v.size());
  }

  void str(const std::string& s) { array(s.data(), s.size()); }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  std::vector<std::uint8_t> buf_;
};

class BlobReader {
public:
  BlobReader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}
  explicit BlobReader(const std::vector<std::uint8_t>& b) : BlobReader(b.data(), b.size()) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  void bytes(void* out, std::size_t n) {
    if (n > remaining())
      throw CorruptError("resilience: truncated stream (want " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()) + ")");
    // lint: memcpy-ok (raw byte reader; pod<T>() supplies sizeof-exact counts)
    std::memcpy(out, p_, n);
    p_ += n;
  }

  template <class T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof v);
    return v;
  }

  template <class T>
  void pod(T& v) {
    v = pod<T>();
  }

  /// Reads a count-prefixed array; the element count is validated against the
  /// remaining payload before allocating (a corrupt count must not trigger a
  /// multi-gigabyte allocation).
  template <class T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = pod<std::uint64_t>();
    if (n > remaining() / sizeof(T))
      throw CorruptError("resilience: corrupt array count " + std::to_string(n));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n) bytes(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    return v;
  }

  std::string str() {
    auto raw = vec<char>();
    return std::string(raw.begin(), raw.end());
  }

  /// Every load_state should end with this: leftover bytes mean the payload
  /// and the loader disagree about the format.
  void expect_end() const {
    if (remaining() != 0)
      throw CorruptError("resilience: " + std::to_string(remaining()) +
                         " trailing bytes in stream");
  }

private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- RNG engine serialisation ----------------------------------------------
// std::mt19937's stream operators print the full 624-word engine state as
// decimal integers; the round trip is exact by [rand.req.eng], which is what
// makes restarted runs bitwise identical to uninterrupted ones.

inline void put_rng(BlobWriter& w, const std::mt19937& g) {
  std::ostringstream os;
  os << g;
  w.str(os.str());
}

inline void get_rng(BlobReader& r, std::mt19937& g) {
  std::istringstream is(r.str());
  is >> g;
  if (!is) throw CorruptError("resilience: corrupt mt19937 state");
}

}  // namespace resilience
