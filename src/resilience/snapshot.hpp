#pragma once
// Snapshot file framing: every checkpoint file (rank payload or manifest) is
//
//   [8-byte magic "NGCKPT1\0"] [u32 format version] [u32 CRC32 of payload]
//   [u64 payload size] [payload bytes]
//
// written atomically (tmp file + rename) so a crash mid-write can never
// leave a half-written file under the final name, and validated on read so
// truncation or bit-rot surfaces as CorruptError instead of UB.

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/blob.hpp"

namespace resilience {

inline constexpr std::uint32_t kFormatVersion = 1;

/// Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& v, std::uint32_t seed = 0) {
  return crc32(v.data(), v.size(), seed);
}

/// Frame `payload` and write it to `path` via `<path>.tmp` + rename.
/// Throws SnapshotError on any I/O failure.
void write_frame_atomic(const std::string& path, const std::vector<std::uint8_t>& payload);

/// Read and validate a framed file. Throws SnapshotError when the file is
/// missing/unreadable and CorruptError when the magic, version, size, or CRC
/// check fails.
std::vector<std::uint8_t> read_frame(const std::string& path);

}  // namespace resilience
