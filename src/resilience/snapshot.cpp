#include "resilience/snapshot.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace resilience {

namespace {

constexpr std::array<char, 8> kMagic = {'N', 'G', 'C', 'K', 'P', 'T', '1', '\0'};

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (c & 1u ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint32_t* t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_frame_atomic(const std::string& path, const std::vector<std::uint8_t>& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("resilience: cannot open " + tmp + " for writing");
    out.write(kMagic.data(), kMagic.size());
    const std::uint32_t version = kFormatVersion;
    const std::uint32_t crc = crc32(payload);
    const std::uint64_t size = payload.size();
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.write(reinterpret_cast<const char*>(&size), sizeof size);
    if (size)
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(size));
    out.flush();
    if (!out) throw SnapshotError("resilience: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SnapshotError("resilience: rename " + tmp + " -> " + path + " failed");
}

std::vector<std::uint8_t> read_frame(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("resilience: cannot open checkpoint file " + path);

  std::array<char, 8> magic{};
  std::uint32_t version = 0, crc = 0;
  std::uint64_t size = 0;
  in.read(magic.data(), magic.size());
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&crc), sizeof crc);
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  if (!in) throw CorruptError("resilience: " + path + ": truncated header");
  if (magic != kMagic) throw CorruptError("resilience: " + path + ": bad magic");
  if (version != kFormatVersion)
    throw CorruptError("resilience: " + path + ": unsupported format version " +
                       std::to_string(version));

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
  if (size) {
    in.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(size));
    if (!in || in.gcount() != static_cast<std::streamsize>(size))
      throw CorruptError("resilience: " + path + ": truncated payload (want " +
                         std::to_string(size) + " bytes)");
  }
  if (crc32(payload) != crc)
    throw CorruptError("resilience: " + path + ": CRC mismatch (file corrupted)");
  return payload;
}

}  // namespace resilience
