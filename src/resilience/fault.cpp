#include "resilience/fault.hpp"

namespace resilience {

FaultPlan& FaultPlan::kill_rank(int world_rank, std::uint64_t step) {
  kills_.push_back({world_rank, step});
  return *this;
}

FaultPlan& FaultPlan::corrupt_stream(int world_rank, int at_save) {
  streams_.push_back({world_rank, at_save, StreamFault::Corrupt});
  return *this;
}

FaultPlan& FaultPlan::drop_stream(int world_rank, int at_save) {
  streams_.push_back({world_rank, at_save, StreamFault::Drop});
  return *this;
}

void FaultPlan::check(int world_rank, std::uint64_t step) const {
  for (const auto& k : kills_)
    if (k.rank == world_rank && k.step == step) throw InjectedFault(world_rank, step);
}

FaultPlan::StreamFault FaultPlan::on_checkpoint_write(int world_rank) {
  int nth;
  {
    std::lock_guard lk(mu_);
    nth = saves_seen_[world_rank]++;
  }
  for (const auto& s : streams_)
    if (s.rank == world_rank && s.at_save == nth) return s.kind;
  return StreamFault::None;
}

}  // namespace resilience
