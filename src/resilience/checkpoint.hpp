#pragma once
// Checkpoint/restart coordination. A checkpoint is a directory:
//
//   <dir>/manifest.ckpt   written by rank 0: format version, step, time,
//                         world size, registered component names
//   <dir>/rank<r>.ckpt    per-rank payload: one CRC-tagged stream per
//                         registered component
//
// Every file uses the framed format of snapshot.hpp (magic, version, CRC32,
// atomic tmp+rename write). save() and load() are collective over the
// coordinator's communicator (or serial when constructed without one);
// load() verifies that the restart world layout matches the manifest and
// dispatches component streams by name, so registration order may differ
// between the writing and the reading program.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "resilience/blob.hpp"
#include "resilience/fault.hpp"
#include "xmp/comm.hpp"

namespace resilience {

/// Anything that can round-trip its full runtime state through the blob
/// codec. Implementations must be exact: a loaded object must continue
/// bitwise identically to one that never stopped.
class Checkpointable {
public:
  virtual ~Checkpointable() = default;
  virtual void save_state(BlobWriter& w) const = 0;
  virtual void load_state(BlobReader& r) = 0;
};

/// Adapter for any object exposing save_state/load_state members (the
/// pattern every solver in this repo follows), so solver libraries never
/// need to inherit from resilience types.
template <class T>
class CheckpointableRef final : public Checkpointable {
public:
  explicit CheckpointableRef(T& obj) : obj_(&obj) {}
  void save_state(BlobWriter& w) const override { obj_->save_state(w); }
  void load_state(BlobReader& r) override { obj_->load_state(r); }

private:
  T* obj_;
};

struct RestartInfo {
  std::uint64_t step = 0;
  double time = 0.0;
  int world_size = 1;
};

class CheckpointCoordinator {
public:
  /// An invalid (default) comm means serial operation: one rank, rank 0.
  explicit CheckpointCoordinator(xmp::Comm comm = {}) : comm_(std::move(comm)) {}

  /// Register a component by name (must be unique). The object must outlive
  /// the coordinator.
  template <class T>
  void add(const std::string& name, T& obj) {
    owned_.push_back(std::make_unique<CheckpointableRef<T>>(obj));
    add_ref(name, *owned_.back());
  }
  void add_ref(const std::string& name, Checkpointable& c);

  /// Optional storage-fault injection hook (see fault.hpp). The plan must
  /// outlive the coordinator.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Collective: every rank serialises its components into <dir>/rank<r>.ckpt
  /// and rank 0 writes the manifest; a final barrier makes the checkpoint
  /// complete-on-return everywhere. Returns the payload bytes this rank wrote.
  std::size_t save(const std::string& dir, std::uint64_t step, double time) const;

  /// Collective: verify the manifest (world size, component set), then load
  /// every registered component from this rank's stream. Throws LayoutError
  /// on a world/component mismatch and CorruptError on damaged streams.
  RestartInfo load(const std::string& dir);

  /// Read only the manifest header of a checkpoint directory (serial).
  static RestartInfo peek(const std::string& dir);

  int rank() const { return comm_.valid() ? comm_.rank() : 0; }
  int size() const { return comm_.valid() ? comm_.size() : 1; }

private:
  xmp::Comm comm_;
  std::vector<std::pair<std::string, Checkpointable*>> components_;
  std::vector<std::unique_ptr<Checkpointable>> owned_;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace resilience
