#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "resilience/snapshot.hpp"
#include "telemetry/registry.hpp"

namespace resilience {

namespace {

std::string rank_file(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".ckpt";
}

std::string manifest_file(const std::string& dir) { return dir + "/manifest.ckpt"; }

struct Manifest {
  std::uint64_t step = 0;
  double time = 0.0;
  int world_size = 1;
  std::vector<std::string> components;
};

Manifest parse_manifest(const std::vector<std::uint8_t>& payload) {
  BlobReader r(payload);
  Manifest m;
  r.pod(m.step);
  r.pod(m.time);
  r.pod(m.world_size);
  const auto n = r.pod<std::uint64_t>();
  for (std::uint64_t k = 0; k < n; ++k) m.components.push_back(r.str());
  r.expect_end();
  return m;
}

/// Flip one payload byte of an already-framed file (storage-fault injection;
/// read_frame's CRC check must detect the damage).
void corrupt_file_payload(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw SnapshotError("resilience: cannot reopen " + path + " for corruption");
  // header: 8 magic + 4 version + 4 crc + 8 size
  const std::streamoff off = 24;
  f.seekg(off);
  char b = 0;
  f.read(&b, 1);
  if (!f) throw SnapshotError("resilience: cannot corrupt empty payload in " + path);
  b = static_cast<char>(b ^ 0x5A);
  f.seekp(off);
  f.write(&b, 1);
}

}  // namespace

void CheckpointCoordinator::add_ref(const std::string& name, Checkpointable& c) {
  for (const auto& [n, ptr] : components_) {
    (void)ptr;
    if (n == name)
      throw std::invalid_argument("CheckpointCoordinator: duplicate component '" + name + "'");
  }
  components_.emplace_back(name, &c);
}

std::size_t CheckpointCoordinator::save(const std::string& dir, std::uint64_t step,
                                        double time) const {
  telemetry::ScopedPhase phase("resilience.save");
  const int r = rank();

  if (r == 0) std::filesystem::create_directories(dir);
  if (comm_.valid()) comm_.barrier();  // directory exists before anyone writes

  // --- this rank's payload: one CRC-tagged stream per component ---
  BlobWriter w;
  w.pod(static_cast<std::int32_t>(r));
  w.pod(static_cast<std::uint64_t>(components_.size()));
  for (const auto& [name, comp] : components_) {
    BlobWriter sub;
    comp->save_state(sub);
    w.str(name);
    w.pod(static_cast<std::uint64_t>(sub.size()));
    w.pod(crc32(sub.data()));
    w.bytes(sub.data().data(), sub.size());
  }
  const std::size_t bytes = w.size();

  const auto fault = fault_plan_
                         ? fault_plan_->on_checkpoint_write(comm_.valid() ? comm_.world_rank() : 0)
                         : FaultPlan::StreamFault::None;
  if (fault != FaultPlan::StreamFault::Drop) {
    const std::string path = rank_file(dir, r);
    write_frame_atomic(path, w.data());
    if (fault == FaultPlan::StreamFault::Corrupt) corrupt_file_payload(path);
  }

  if (r == 0) {
    BlobWriter m;
    m.pod(step);
    m.pod(time);
    m.pod(static_cast<std::int32_t>(size()));
    m.pod(static_cast<std::uint64_t>(components_.size()));
    for (const auto& [name, comp] : components_) {
      (void)comp;
      m.str(name);
    }
    write_frame_atomic(manifest_file(dir), m.data());
  }

  if (comm_.valid()) comm_.barrier();  // checkpoint complete-on-return everywhere
  telemetry::count("resilience.checkpoint.bytes", static_cast<double>(bytes));
  telemetry::count("resilience.checkpoints", 1.0);
  return bytes;
}

RestartInfo CheckpointCoordinator::load(const std::string& dir) {
  telemetry::ScopedPhase phase("resilience.load");
  const int r = rank();

  // Rank 0 reads the manifest; everyone gets it (or the failure reason) via
  // bcast so all ranks fail the same way instead of deadlocking.
  std::vector<std::uint8_t> msg;
  if (r == 0) {
    try {
      auto payload = read_frame(manifest_file(dir));
      msg.push_back(1);
      msg.insert(msg.end(), payload.begin(), payload.end());
    } catch (const std::exception& e) {
      const std::string what = e.what();
      msg.push_back(0);
      msg.insert(msg.end(), what.begin(), what.end());
    }
  }
  if (comm_.valid()) comm_.bcast(msg, 0);
  if (msg.empty() || msg[0] == 0)
    throw SnapshotError(msg.size() > 1
                            ? std::string(msg.begin() + 1, msg.end())
                            : "resilience: manifest read failed");
  const Manifest man = parse_manifest({msg.begin() + 1, msg.end()});

  if (man.world_size != size())
    throw LayoutError("resilience: checkpoint was written by " +
                      std::to_string(man.world_size) + " ranks but is being restored on " +
                      std::to_string(size()));
  if (man.components.size() != components_.size())
    throw LayoutError("resilience: checkpoint has " + std::to_string(man.components.size()) +
                      " components but " + std::to_string(components_.size()) +
                      " are registered");
  for (const auto& [name, comp] : components_) {
    (void)comp;
    if (std::find(man.components.begin(), man.components.end(), name) == man.components.end())
      throw LayoutError("resilience: component '" + name + "' missing from checkpoint");
  }

  // --- this rank's stream file ---
  auto payload = read_frame(rank_file(dir, r));
  BlobReader br(payload);
  const auto file_rank = br.pod<std::int32_t>();
  if (file_rank != r)
    throw CorruptError("resilience: rank stream claims rank " + std::to_string(file_rank) +
                       " but was read by rank " + std::to_string(r));
  const auto ncomp = br.pod<std::uint64_t>();
  if (ncomp != components_.size())
    throw LayoutError("resilience: rank stream has " + std::to_string(ncomp) + " components");
  std::size_t loaded = 0;
  std::size_t total_bytes = 0;
  for (std::uint64_t k = 0; k < ncomp; ++k) {
    const std::string name = br.str();
    const auto nbytes = br.pod<std::uint64_t>();
    const auto crc = br.pod<std::uint32_t>();
    if (nbytes > br.remaining())
      throw CorruptError("resilience: truncated component stream '" + name + "'");
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(nbytes));
    if (nbytes) br.bytes(blob.data(), blob.size());
    if (crc32(blob) != crc)
      throw CorruptError("resilience: CRC mismatch in component stream '" + name + "'");
    auto it = std::find_if(components_.begin(), components_.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == components_.end())
      throw LayoutError("resilience: unknown component '" + name + "' in rank stream");
    BlobReader sub(blob);
    it->second->load_state(sub);
    sub.expect_end();
    ++loaded;
    total_bytes += blob.size();
  }
  if (loaded != components_.size())
    throw LayoutError("resilience: rank stream restored only " + std::to_string(loaded) +
                      " components");
  br.expect_end();

  if (comm_.valid()) comm_.barrier();
  telemetry::count("resilience.restore.bytes", static_cast<double>(total_bytes));
  return RestartInfo{man.step, man.time, man.world_size};
}

RestartInfo CheckpointCoordinator::peek(const std::string& dir) {
  const Manifest man = parse_manifest(read_frame(manifest_file(dir)));
  return RestartInfo{man.step, man.time, man.world_size};
}

}  // namespace resilience
