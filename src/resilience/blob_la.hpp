#pragma once
// Blob codec helpers for la:: containers, kept out of blob.hpp so the codec
// itself stays dependency-free.

#include <deque>

#include "la/cg.hpp"
#include "la/vector.hpp"
#include "resilience/blob.hpp"

namespace resilience {

inline void put_vector(BlobWriter& w, const la::Vector& v) { w.array(v.data(), v.size()); }

inline void get_vector(BlobReader& r, la::Vector& v) {
  const auto n = r.pod<std::uint64_t>();
  if (n > r.remaining() / sizeof(double))
    throw CorruptError("resilience: corrupt la::Vector length");
  v.resize(static_cast<std::size_t>(n));
  if (n) r.bytes(v.data(), static_cast<std::size_t>(n) * sizeof(double));
}

inline void put_vector_deque(BlobWriter& w, const std::deque<la::Vector>& d) {
  w.pod(static_cast<std::uint64_t>(d.size()));
  for (const auto& v : d) put_vector(w, v);
}

inline void get_vector_deque(BlobReader& r, std::deque<la::Vector>& d) {
  const auto n = r.pod<std::uint64_t>();
  d.clear();
  for (std::uint64_t k = 0; k < n; ++k) {
    la::Vector v;
    get_vector(r, v);
    d.push_back(std::move(v));
  }
}

// The successive-solution projector's basis determines the next solve's
// initial guess, hence the CG iterate sequence; restarts are only bitwise
// reproducible if it is carried across.
inline void put_projector(BlobWriter& w, const la::SolutionProjector& p) {
  put_vector_deque(w, p.basis());
  put_vector_deque(w, p.images());
}

inline void get_projector(BlobReader& r, la::SolutionProjector& p) {
  std::deque<la::Vector> basis, images;
  get_vector_deque(r, basis);
  get_vector_deque(r, images);
  p.set_state(std::move(basis), std::move(images));
}

}  // namespace resilience
