#pragma once
// Deterministic fault injection. At BG/P production scale the mean time
// between failures is shorter than a simulation, so robustness has to be a
// tested property, not a hope: a FaultPlan scripts exactly which rank fails
// at which step (process faults) and which checkpoint streams are corrupted
// or dropped on write (storage faults), so resilience tests replay the same
// failure every run.
//
// Process faults hook into the xmp step loop: every rank calls
// plan.check(comm, step) once per step, and the scheduled victim throws
// InjectedFault there. By xmp semantics an uncaught InjectedFault aborts the
// whole run (every blocked rank wakes with AbortedError); a failover-aware
// harness instead catches it and reports the rank dead through
// coupling::ReplicaEnsemble::exchange_health.
//
// Storage faults hook into CheckpointCoordinator::save via set_fault_plan:
// the scheduled save on the scheduled rank is either corrupted (one payload
// byte flipped after framing, so read_frame's CRC check must catch it) or
// dropped (the stream file is never written).

#include <cstdint>
#include <mutex>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "xmp/comm.hpp"

namespace resilience {

/// Thrown on the victim rank at its scheduled kill step.
struct InjectedFault : std::runtime_error {
  InjectedFault(int rank_, std::uint64_t step_)
      : std::runtime_error("resilience: injected fault on rank " + std::to_string(rank_) +
                           " at step " + std::to_string(step_)),
        rank(rank_),
        step(step_) {}
  int rank;
  std::uint64_t step;
};

class FaultPlan {
public:
  enum class StreamFault : std::uint8_t { None, Corrupt, Drop };

  /// Schedule `world_rank` to throw InjectedFault at `step`.
  FaultPlan& kill_rank(int world_rank, std::uint64_t step);

  /// Schedule the `at_save`-th checkpoint save (0-based, counted per rank)
  /// on `world_rank` to be written corrupted / not written at all.
  FaultPlan& corrupt_stream(int world_rank, int at_save = 0);
  FaultPlan& drop_stream(int world_rank, int at_save = 0);

  /// Step hook: call once per step on every rank. Throws InjectedFault when
  /// this (rank, step) is scheduled. Thread-safe (read-only after setup).
  void check(int world_rank, std::uint64_t step) const;
  void check(const xmp::Comm& comm, std::uint64_t step) const {
    check(comm.world_rank(), step);
  }

  /// Storage hook used by CheckpointCoordinator: advances this rank's save
  /// counter and reports what to do with the stream being written.
  StreamFault on_checkpoint_write(int world_rank);

private:
  struct Kill {
    int rank;
    std::uint64_t step;
  };
  struct Stream {
    int rank;
    int at_save;
    StreamFault kind;
  };

  std::vector<Kill> kills_;
  std::vector<Stream> streams_;
  std::mutex mu_;                 ///< guards saves_seen_ (ranks save concurrently)
  std::map<int, int> saves_seen_;
};

}  // namespace resilience
