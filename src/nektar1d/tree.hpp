#pragma once
// Network generators:
//  * fractal_tree(): the paper's mesovascular-network model — small arteries
//    "follow a tree-like structure governed by specific fractal laws"
//    (Murray's law radius scaling, constant length/radius ratio).
//  * cow_network(): a Circle-of-Willis-like macrovascular topology with four
//    inlets (two carotids, two vertebrals), a communicating ring, and six
//    efferent outlets — the structured stand-in for the paper's
//    patient-specific MaN geometry.

#include "nektar1d/network.hpp"

namespace nektar1d {

struct FractalTreeParams {
  double root_radius = 0.3;    ///< cm
  int generations = 4;         ///< depth of the binary tree
  double murray_gamma = 3.0;   ///< r_p^g = r_l^g + r_r^g
  double asymmetry = 0.8;      ///< r_l / r_r of daughters
  double length_ratio = 20.0;  ///< vessel length = ratio * radius
  double beta0 = 4.0e5;        ///< tube-law stiffness at the root (scales ~1/r)
  double rho = 1.06;
  std::size_t elements_root = 6;
  int order = 4;
  double terminal_resistance = 5.0e3;  ///< distal R at the leaves (scaled by area)
};

struct FractalTree {
  ArterialNetwork net;
  int root = -1;
  std::vector<int> leaves;
  std::size_t total_vessels = 0;
};

/// Build the tree and attach resistance outlets at every leaf. The inlet BC
/// on the root is left to the caller.
FractalTree fractal_tree(const FractalTreeParams& p);

struct CowNetwork {
  ArterialNetwork net;
  // inlets
  int left_carotid = -1, right_carotid = -1, left_vertebral = -1, right_vertebral = -1;
  // ring segments and efferents
  int basilar = -1;
  std::vector<int> efferents;  ///< outlet vessels (ACA/MCA/PCA pairs)
};

/// Circle-of-Willis-like network; inlet flow waveforms are left to the
/// caller (use set_inlet_flow on each inlet vessel).
CowNetwork cow_network();

}  // namespace nektar1d
