#include "nektar1d/network.hpp"

#include "resilience/blob_la.hpp"

#include <cmath>
#include <stdexcept>

#include "la/dense.hpp"

namespace nektar1d {

int ArterialNetwork::add_vessel(const VesselParams& p) {
  vessels_.push_back(std::make_unique<Artery>(p));
  return static_cast<int>(vessels_.size()) - 1;
}

void ArterialNetwork::set_inlet_flow(int v, std::function<double(double)> Q) {
  inlets_.push_back({v, std::move(Q)});
}

void ArterialNetwork::set_outlet_rcr(int v, double Rp, double Rd, double C) {
  outlets_.push_back({v, Rp, Rd, C, 0.0});
}

void ArterialNetwork::set_outlet_resistance(int v, double R) {
  // Pure resistance: no compliance; model as RCR with tiny C and all the
  // resistance proximal so the capacitor never charges meaningfully.
  outlets_.push_back({v, R, 1e-12, 1e-12, 0.0});
}

void ArterialNetwork::add_junction(std::vector<Attachment> atts) {
  if (atts.size() < 2) throw std::invalid_argument("add_junction: need >= 2 attachments");
  junctions_.push_back({std::move(atts)});
}

void ArterialNetwork::apply_inlet(const Inlet& in, double t_new) {
  Artery& a = vessel(in.vessel);
  const double Qt = in.Q(t_new);
  // Outgoing characteristic at the left end is W2 (speed U - c < 0);
  // find (A, U) with A U = Q and W2(A, U) = W2_interior by Newton on A.
  const double w2i = a.W2(a.A_left(), a.U_left());
  double A = a.A_left();
  for (int it = 0; it < 50; ++it) {
    const double c = a.wave_speed(A);
    const double U = w2i + 4.0 * (c - a.c0());
    const double f = A * U - Qt;
    // df/dA = U + A dU/dA, dU/dA = 4 dc/dA = c / A (since c ~ A^{1/4})
    const double df = U + A * (c / A);
    const double dA = f / df;
    A -= dA;
    if (A <= 0.0) A = 0.25 * (A + dA);  // backtrack
    if (std::fabs(dA) < 1e-14 * a.params().A0) break;
  }
  const double U = w2i + 4.0 * (a.wave_speed(A) - a.c0());
  a.set_left_ghost(A, U);
}

void ArterialNetwork::apply_outlet(Outlet& out, double dt) {
  Artery& a = vessel(out.vessel);
  // Outgoing characteristic at the right end is W1; close with the
  // windkessel p = Q Rp + pc, C dpc/dt = Q - pc/Rd (pc held fixed within the
  // Newton solve, advanced after).
  const double w1i = a.W1(a.A_right(), a.U_right());
  double A = a.A_right();
  double Q = 0.0;
  for (int it = 0; it < 50; ++it) {
    const double c = a.wave_speed(A);
    const double U = w1i - 4.0 * (c - a.c0());
    Q = A * U;
    const double f = a.pressure(A) - (Q * out.Rp + out.pc);
    // dp/dA = beta/(2 sqrt A); dQ/dA = U + A dU/dA, dU/dA = -c/A
    const double dp = a.params().beta / (2.0 * std::sqrt(A));
    const double dQ = U - c;
    const double df = dp - dQ * out.Rp;
    const double dA = f / df;
    A -= dA;
    if (A <= 0.0) A = 0.25 * (A + dA);
    if (std::fabs(dA) < 1e-14 * a.params().A0) break;
  }
  const double U = w1i - 4.0 * (a.wave_speed(A) - a.c0());
  a.set_right_ghost(A, U);
  // advance the windkessel capacitor (implicit in pc, explicit in Q)
  Q = A * U;
  out.pc = (out.pc + dt * Q / out.C) / (1.0 + dt / (out.Rd * out.C));
}

void ArterialNetwork::apply_junction(const Junction& j) {
  const std::size_t m = j.atts.size();
  // Unknowns: (A_k, U_k) for each attachment; equations:
  //   m characteristic preservations, 1 mass conservation,
  //   m-1 total-pressure continuities.
  la::Vector x(2 * m);  // [A_0, U_0, A_1, U_1, ...]
  std::vector<double> w_out(m);
  std::vector<const Artery*> art(m);
  std::vector<bool> right(m);
  for (std::size_t k = 0; k < m; ++k) {
    const auto& at = j.atts[k];
    art[k] = &vessel(at.vessel);
    right[k] = at.end == End::Right;
    const double A = right[k] ? art[k]->A_right() : art[k]->A_left();
    const double U = right[k] ? art[k]->U_right() : art[k]->U_left();
    w_out[k] = right[k] ? art[k]->W1(A, U) : art[k]->W2(A, U);
    x[2 * k] = A;
    x[2 * k + 1] = U;
  }

  auto residual = [&](const la::Vector& s, la::Vector& r) {
    // characteristic preservation
    for (std::size_t k = 0; k < m; ++k) {
      const double A = s[2 * k], U = s[2 * k + 1];
      r[k] = (right[k] ? art[k]->W1(A, U) : art[k]->W2(A, U)) - w_out[k];
    }
    // mass: sum of flow into the junction = 0 (right end contributes +Q,
    // left end -Q)
    double q = 0.0;
    for (std::size_t k = 0; k < m; ++k)
      q += (right[k] ? 1.0 : -1.0) * s[2 * k] * s[2 * k + 1];
    r[m] = q;
    // total pressure continuity relative to attachment 0
    const double rho0 = art[0]->params().rho;
    const double pt0 = art[0]->pressure(s[0]) + 0.5 * rho0 * s[1] * s[1];
    for (std::size_t k = 1; k < m; ++k) {
      const double rhok = art[k]->params().rho;
      r[m + k] = art[k]->pressure(s[2 * k]) + 0.5 * rhok * s[2 * k + 1] * s[2 * k + 1] - pt0;
    }
  };

  la::Vector r(2 * m), r2(2 * m), dx;
  for (int it = 0; it < 60; ++it) {
    residual(x, r);
    double rn = 0.0;
    for (std::size_t i = 0; i < 2 * m; ++i) rn = std::max(rn, std::fabs(r[i]));
    if (rn < 1e-11 * art[0]->params().beta * 1e-3) break;
    // numeric Jacobian
    la::DenseMatrix J(2 * m, 2 * m);
    for (std::size_t c = 0; c < 2 * m; ++c) {
      la::Vector xp = x;
      const double h = 1e-7 * (1.0 + std::fabs(x[c]));
      xp[c] += h;
      residual(xp, r2);
      for (std::size_t i = 0; i < 2 * m; ++i) J(i, c) = (r2[i] - r[i]) / h;
    }
    if (!la::lu_solve(J, r, dx))
      throw std::runtime_error("apply_junction: singular Jacobian");
    for (std::size_t i = 0; i < 2 * m; ++i) x[i] -= dx[i];
    for (std::size_t k = 0; k < m; ++k)
      if (x[2 * k] <= 0.0) x[2 * k] = 0.1 * art[k]->params().A0;
  }

  for (std::size_t k = 0; k < m; ++k) {
    Artery& a = vessel(j.atts[k].vessel);
    if (right[k])
      a.set_right_ghost(x[2 * k], x[2 * k + 1]);
    else
      a.set_left_ghost(x[2 * k], x[2 * k + 1]);
  }
}

void ArterialNetwork::step(double dt) {
  const double t_new = t_ + dt;
  for (const auto& in : inlets_) apply_inlet(in, t_new);
  for (auto& out : outlets_) apply_outlet(out, dt);
  for (const auto& j : junctions_) apply_junction(j);
  for (auto& v : vessels_) v->step(dt);
  t_ = t_new;
}

double ArterialNetwork::suggested_dt(double cfl) const {
  double dt = 1e30;
  for (const auto& v : vessels_) {
    const double h = v->params().length / static_cast<double>(v->params().elements);
    const double hmin = h / (v->params().order * v->params().order);
    dt = std::min(dt, cfl * hmin / v->max_wave_speed());
  }
  return dt;
}

double ArterialNetwork::pressure_at(int v, End e) const {
  const Artery& a = vessel(v);
  return a.pressure(e == End::Left ? a.A_left() : a.A_right());
}

double ArterialNetwork::flow_at(int v, End e) const {
  const Artery& a = vessel(v);
  return e == End::Left ? a.Q_left() : a.Q_right();
}

double ArterialNetwork::area_at(int v, End e) const {
  const Artery& a = vessel(v);
  return e == End::Left ? a.A_left() : a.A_right();
}

void ArterialNetwork::save_state(resilience::BlobWriter& w) const {
  w.pod(t_);
  w.pod(static_cast<std::uint64_t>(vessels_.size()));
  for (const auto& v : vessels_) v->save_state(w);
  w.pod(static_cast<std::uint64_t>(outlets_.size()));
  for (const auto& o : outlets_) w.pod(o.pc);
}

void ArterialNetwork::load_state(resilience::BlobReader& r) {
  r.pod(t_);
  if (r.pod<std::uint64_t>() != vessels_.size())
    throw resilience::LayoutError("ArterialNetwork: checkpoint vessel count != topology");
  for (auto& v : vessels_) v->load_state(r);
  if (r.pod<std::uint64_t>() != outlets_.size())
    throw resilience::LayoutError("ArterialNetwork: checkpoint outlet count != topology");
  for (auto& o : outlets_) r.pod(o.pc);
}

}  // namespace nektar1d
