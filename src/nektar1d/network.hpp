#pragma once
// Arterial network: vessels joined at junctions (bifurcations, merges, or
// general M-way joints as in the Circle of Willis), with prescribed-flow
// inlets and RCR-windkessel outlets. Junction states are matched each step
// by Newton iteration on characteristic preservation + mass conservation +
// total-pressure continuity (the standard spectral/hp 1D hemodynamics
// treatment).

#include <functional>
#include <memory>
#include <vector>

#include "nektar1d/artery.hpp"

namespace nektar1d {

enum class End { Left, Right };

struct Attachment {
  int vessel = -1;
  End end = End::Right;
};

class ArterialNetwork {
public:
  /// Returns the new vessel's id.
  int add_vessel(const VesselParams& p);

  std::size_t num_vessels() const { return vessels_.size(); }
  const Artery& vessel(int v) const { return *vessels_[static_cast<std::size_t>(v)]; }
  Artery& vessel(int v) { return *vessels_[static_cast<std::size_t>(v)]; }

  /// Prescribed volumetric inflow Q(t) at the left end of `v`.
  void set_inlet_flow(int v, std::function<double(double)> Q);

  /// RCR windkessel at the right end of `v`: proximal resistance Rp,
  /// distal resistance Rd, compliance C.
  void set_outlet_rcr(int v, double Rp, double Rd, double C);

  /// Pure resistance outlet (RCR with C -> 0 shortcut).
  void set_outlet_resistance(int v, double R);

  /// Join vessel ends at a junction (any number >= 2; a classic bifurcation
  /// is {parent Right, child1 Left, child2 Left}).
  void add_junction(std::vector<Attachment> atts);

  /// Advance the whole network by dt.
  void step(double dt);

  /// CFL-limited time step suggestion.
  double suggested_dt(double cfl = 0.3) const;

  double time() const { return t_; }

  /// Diagnostics at a vessel end.
  double pressure_at(int v, End e) const;
  double flow_at(int v, End e) const;
  double area_at(int v, End e) const;

  /// Checkpoint the network state: time, every vessel's (A, U) fields and
  /// ghosts, and the windkessel capacitor pressures. Topology (vessels,
  /// junctions, BCs) is configuration and must match at restart.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  struct Inlet {
    int vessel;
    std::function<double(double)> Q;
  };
  struct Outlet {
    int vessel;
    double Rp, Rd, C;
    double pc = 0.0;  ///< windkessel capacitor pressure (state)
  };
  struct Junction {
    std::vector<Attachment> atts;
  };

  void apply_inlet(const Inlet& in, double t_new);
  void apply_outlet(Outlet& out, double dt);
  void apply_junction(const Junction& j);

  std::vector<std::unique_ptr<Artery>> vessels_;
  // analyze: no-checkpoint (inflow waveform callbacks are configuration)
  std::vector<Inlet> inlets_;
  std::vector<Outlet> outlets_;
  // analyze: no-checkpoint (network topology is configuration, must match at restart)
  std::vector<Junction> junctions_;
  double t_ = 0.0;
};

}  // namespace nektar1d
