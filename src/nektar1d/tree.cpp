#include "nektar1d/tree.hpp"

#include <cmath>

namespace nektar1d {

namespace {

VesselParams vessel_of_radius(double r, const FractalTreeParams& p) {
  VesselParams vp;
  vp.length = p.length_ratio * r;
  vp.A0 = M_PI * r * r;
  // Elastic stiffness grows as vessels narrow (beta ~ Eh/r^2 ~ 1/r for
  // h ~ r): normalise to the root radius.
  vp.beta = p.beta0 * (p.root_radius / r);
  vp.rho = p.rho;
  vp.elements = p.elements_root;
  vp.order = p.order;
  return vp;
}

void grow(FractalTree& t, const FractalTreeParams& p, int parent, double r, int gen) {
  if (gen >= p.generations) {
    // terminal resistance scaled inversely with area (smaller vessels feed
    // higher-resistance beds)
    const double A = M_PI * r * r;
    t.net.set_outlet_resistance(parent, p.terminal_resistance * (M_PI * p.root_radius *
                                                                 p.root_radius) / A);
    t.leaves.push_back(parent);
    return;
  }
  // Murray's law with asymmetry a = r_l / r_r:
  // r_r = r_p / (1 + a^g)^{1/g}, r_l = a * r_r
  const double g = p.murray_gamma;
  const double rr = r / std::pow(1.0 + std::pow(p.asymmetry, g), 1.0 / g);
  const double rl = p.asymmetry * rr;
  const int left = t.net.add_vessel(vessel_of_radius(rl, p));
  const int right = t.net.add_vessel(vessel_of_radius(rr, p));
  t.total_vessels += 2;
  t.net.add_junction({{parent, End::Right}, {left, End::Left}, {right, End::Left}});
  grow(t, p, left, rl, gen + 1);
  grow(t, p, right, rr, gen + 1);
}

}  // namespace

FractalTree fractal_tree(const FractalTreeParams& p) {
  FractalTree t;
  t.root = t.net.add_vessel(vessel_of_radius(p.root_radius, p));
  t.total_vessels = 1;
  grow(t, p, t.root, p.root_radius, 0);
  return t;
}

CowNetwork cow_network() {
  CowNetwork c;
  auto vessel = [&](double r_cm, double len_cm) {
    VesselParams vp;
    vp.length = len_cm;
    vp.A0 = M_PI * r_cm * r_cm;
    vp.beta = 4.0e5 * (0.3 / r_cm);
    vp.elements = 6;
    vp.order = 4;
    return vp;
  };

  // Afferents
  c.left_carotid = c.net.add_vessel(vessel(0.25, 12.0));
  c.right_carotid = c.net.add_vessel(vessel(0.25, 12.0));
  c.left_vertebral = c.net.add_vessel(vessel(0.14, 10.0));
  c.right_vertebral = c.net.add_vessel(vessel(0.14, 10.0));

  // Vertebrals merge into the basilar artery.
  c.basilar = c.net.add_vessel(vessel(0.17, 3.0));
  c.net.add_junction({{c.left_vertebral, End::Right},
                      {c.right_vertebral, End::Right},
                      {c.basilar, End::Left}});

  // Ring: carotid terminus splits to MCA (efferent) + ACA (efferent) +
  // posterior communicating artery; basilar splits to the two PCAs, each
  // PCA joined by the ipsilateral PComm.
  const int l_mca = c.net.add_vessel(vessel(0.14, 6.0));
  const int r_mca = c.net.add_vessel(vessel(0.14, 6.0));
  const int l_aca = c.net.add_vessel(vessel(0.11, 5.0));
  const int r_aca = c.net.add_vessel(vessel(0.11, 5.0));
  const int l_pcom = c.net.add_vessel(vessel(0.07, 2.0));
  const int r_pcom = c.net.add_vessel(vessel(0.07, 2.0));
  const int l_pca = c.net.add_vessel(vessel(0.10, 6.0));
  const int r_pca = c.net.add_vessel(vessel(0.10, 6.0));

  c.net.add_junction({{c.left_carotid, End::Right},
                      {l_mca, End::Left},
                      {l_aca, End::Left},
                      {l_pcom, End::Left}});
  c.net.add_junction({{c.right_carotid, End::Right},
                      {r_mca, End::Left},
                      {r_aca, End::Left},
                      {r_pcom, End::Left}});
  c.net.add_junction({{c.basilar, End::Right},
                      {l_pca, End::Left},
                      {r_pca, End::Left},
                      {l_pcom, End::Right},
                      {r_pcom, End::Right}});

  // Efferent outlets: RCR windkessels (units: dyn s/cm^5, cm^5/dyn).
  for (int v : {l_mca, r_mca, l_aca, r_aca, l_pca, r_pca}) {
    c.net.set_outlet_rcr(v, 1.0e3, 1.5e4, 2.0e-5);
    c.efferents.push_back(v);
  }
  return c;
}

}  // namespace nektar1d
