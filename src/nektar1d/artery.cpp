#include "nektar1d/artery.hpp"

#include "resilience/blob_la.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nektar1d {

Artery::Artery(const VesselParams& p)
    : prm_(p), rule_(sem::gll_rule(p.order)), D_(sem::gll_diff_matrix(rule_)) {
  if (p.elements == 0 || p.length <= 0.0 || p.A0 <= 0.0 || p.beta <= 0.0 || p.rho <= 0.0)
    throw std::invalid_argument("Artery: bad parameters");
  const std::size_t n1 = static_cast<std::size_t>(p.order) + 1;
  const double dx = p.length / static_cast<double>(p.elements);
  jac_ = 0.5 * dx;
  x_.resize(p.elements * n1);
  A_.resize(x_.size(), p.A0);
  U_.resize(x_.size(), 0.0);
  for (std::size_t e = 0; e < p.elements; ++e)
    for (std::size_t k = 0; k < n1; ++k)
      x_[e * n1 + k] = (static_cast<double>(e) + 0.5 * (rule_.nodes[k] + 1.0)) * dx;
  ghost_Al_ = p.A0;
  ghost_Ul_ = 0.0;
  ghost_Ar_ = p.A0;
  ghost_Ur_ = 0.0;
}

double Artery::pressure(double A) const {
  return prm_.beta * (std::sqrt(A) - std::sqrt(prm_.A0));
}

double Artery::wave_speed(double A) const {
  return std::sqrt(prm_.beta / (2.0 * prm_.rho)) * std::pow(A, 0.25);
}

void Artery::from_characteristics(double w1, double w2, double& A, double& U) const {
  const double c = c0() + 0.125 * (w1 - w2);
  const double s = 2.0 * prm_.rho * c * c / prm_.beta;  // sqrt(A)
  A = s * s;
  U = 0.5 * (w1 + w2);
}

namespace {
struct Flux {
  double fa, fu;
};
}  // namespace

void Artery::rhs(const la::Vector& A, const la::Vector& U, la::Vector& dA,
                 la::Vector& dU) const {
  const std::size_t n1 = static_cast<std::size_t>(prm_.order) + 1;
  const std::size_t ne = prm_.elements;
  const auto& w = rule_.weights;

  auto flux = [this](double a, double u) -> Flux {
    return {a * u, 0.5 * u * u + pressure(a) / prm_.rho};
  };
  auto lf_flux = [&](double aL, double uL, double aR, double uR) -> Flux {
    const Flux fL = flux(aL, uL), fR = flux(aR, uR);
    const double lam = std::max(std::fabs(uL) + wave_speed(aL),
                                std::fabs(uR) + wave_speed(aR));
    return {0.5 * (fL.fa + fR.fa) - 0.5 * lam * (aR - aL),
            0.5 * (fL.fu + fR.fu) - 0.5 * lam * (uR - uL)};
  };

  for (std::size_t e = 0; e < ne; ++e) {
    const std::size_t off = e * n1;
    // volume term: -(1/J) D F
    for (std::size_t i = 0; i < n1; ++i) {
      double sa = 0.0, su = 0.0;
      for (std::size_t j = 0; j < n1; ++j) {
        const Flux f = flux(A[off + j], U[off + j]);
        sa += D_(i, j) * f.fa;
        su += D_(i, j) * f.fu;
      }
      dA[off + i] = -sa / jac_;
      dU[off + i] = -su / jac_;
    }
    // left face of element e
    double aExt, uExt;
    if (e == 0) {
      aExt = ghost_Al_;
      uExt = ghost_Ul_;
    } else {
      aExt = A[off - 1];
      uExt = U[off - 1];
    }
    {
      const Flux fstar = lf_flux(aExt, uExt, A[off], U[off]);
      const Flux fint = flux(A[off], U[off]);
      dA[off] += (fstar.fa - fint.fa) / (jac_ * w[0]);
      dU[off] += (fstar.fu - fint.fu) / (jac_ * w[0]);
    }
    // right face of element e
    const std::size_t last = off + n1 - 1;
    if (e + 1 == ne) {
      aExt = ghost_Ar_;
      uExt = ghost_Ur_;
    } else {
      aExt = A[last + 1];
      uExt = U[last + 1];
    }
    {
      const Flux fstar = lf_flux(A[last], U[last], aExt, uExt);
      const Flux fint = flux(A[last], U[last]);
      dA[last] -= (fstar.fa - fint.fa) / (jac_ * w[n1 - 1]);
      dU[last] -= (fstar.fu - fint.fu) / (jac_ * w[n1 - 1]);
    }
    // friction source on U
    for (std::size_t i = 0; i < n1; ++i)
      dU[off + i] -= prm_.Kr * U[off + i] / A[off + i];
  }
}

void Artery::step(double dt) {
  const std::size_t n = A_.size();
  la::Vector dA(n), dU(n), A1(n), U1(n), dA1(n), dU1(n);
  rhs(A_, U_, dA, dU);
  for (std::size_t i = 0; i < n; ++i) {
    A1[i] = A_[i] + dt * dA[i];
    U1[i] = U_[i] + dt * dU[i];
  }
  rhs(A1, U1, dA1, dU1);
  for (std::size_t i = 0; i < n; ++i) {
    A_[i] = 0.5 * (A_[i] + A1[i] + dt * dA1[i]);
    U_[i] = 0.5 * (U_[i] + U1[i] + dt * dU1[i]);
    if (!(A_[i] > 0.0) || !std::isfinite(A_[i]) || !std::isfinite(U_[i]))
      throw std::runtime_error("Artery::step: invalid state (unstable dt or bad BC)");
  }
}

double Artery::max_wave_speed() const {
  double m = 0.0;
  for (std::size_t i = 0; i < A_.size(); ++i)
    m = std::max(m, std::fabs(U_[i]) + wave_speed(A_[i]));
  return m;
}

void Artery::save_state(resilience::BlobWriter& w) const {
  resilience::put_vector(w, A_);
  resilience::put_vector(w, U_);
  w.pod(ghost_Al_);
  w.pod(ghost_Ul_);
  w.pod(ghost_Ar_);
  w.pod(ghost_Ur_);
}

void Artery::load_state(resilience::BlobReader& r) {
  la::Vector A, U;
  resilience::get_vector(r, A);
  resilience::get_vector(r, U);
  if (A.size() != A_.size() || U.size() != U_.size())
    throw resilience::LayoutError("Artery: checkpoint node count != discretisation");
  A_ = std::move(A);
  U_ = std::move(U);
  r.pod(ghost_Al_);
  r.pod(ghost_Ul_);
  r.pod(ghost_Ar_);
  r.pod(ghost_Ur_);
}

}  // namespace nektar1d
