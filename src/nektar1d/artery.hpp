#pragma once
// NεκTαr-1D stand-in: nonlinear one-dimensional blood flow in a compliant
// vessel, discretised with nodal discontinuous-Galerkin spectral elements
// (GLL nodes, Lax-Friedrichs numerical flux, SSP-RK2 time stepping).
//
// State per vessel: cross-sectional area A(x,t) and mean velocity U(x,t);
// the tube law closes pressure:  p = p_ext + beta (sqrt(A) - sqrt(A0)).
// The hyperbolic system:
//   A_t + (A U)_x = 0
//   U_t + (U^2/2 + p/rho)_x = -Kr U / A        (viscous wall friction)
// Characteristics: W_{1,2} = U +- 4 (c - c0), c = sqrt(beta/(2 rho)) A^{1/4}.
//
// The paper couples this model to the 3D patches to represent peripheral
// networks "invisible to the MRI or CT scanners" (Sec. 3).

#include <cmath>
#include <cstddef>
#include <functional>

#include "la/dense.hpp"
#include "la/vector.hpp"
#include "sem/gll.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace nektar1d {

struct VesselParams {
  double length = 1.0;        ///< cm
  double A0 = 0.5;            ///< reference area, cm^2
  double beta = 1.0e5;        ///< tube-law stiffness, dyn/cm^3
  double rho = 1.06;          ///< blood density, g/cm^3
  double Kr = 8.0 * M_PI * 0.04;  ///< friction coefficient (Poiseuille-like), cm^2/s
  std::size_t elements = 8;
  int order = 4;              ///< DG polynomial order
};

/// One vessel: DG discretisation of the (A, U) system. Interface values at
/// the two ends are exchanged through characteristic variables by the
/// network (junctions / boundary conditions).
class Artery {
public:
  explicit Artery(const VesselParams& p);

  const VesselParams& params() const { return prm_; }
  std::size_t num_nodes() const { return A_.size(); }

  double x_of(std::size_t node) const { return x_[node]; }
  const la::Vector& A() const { return A_; }
  const la::Vector& U() const { return U_; }
  la::Vector& A() { return A_; }
  la::Vector& U() { return U_; }

  double pressure(double A) const;           ///< tube law
  double wave_speed(double A) const;          ///< c(A)
  double c0() const { return wave_speed(prm_.A0); }

  /// Riemann invariants at a state.
  double W1(double A, double U) const { return U + 4.0 * (wave_speed(A) - c0()); }
  double W2(double A, double U) const { return U - 4.0 * (wave_speed(A) - c0()); }
  /// Invert (W1, W2) -> (A, U).
  void from_characteristics(double w1, double w2, double& A, double& U) const;

  /// End states (node values at x=0 / x=L).
  double A_left() const { return A_[0]; }
  double U_left() const { return U_[0]; }
  double A_right() const { return A_[A_.size() - 1]; }
  double U_right() const { return U_[U_.size() - 1]; }

  /// Ghost states imposed by the network before each RK stage: the boundary
  /// numerical flux uses these as the exterior trace.
  void set_left_ghost(double A, double U) { ghost_Al_ = A; ghost_Ul_ = U; }
  void set_right_ghost(double A, double U) { ghost_Ar_ = A; ghost_Ur_ = U; }

  /// One SSP-RK2 step of size dt (ghost states held fixed over the step).
  void step(double dt);

  /// Largest |U| + c over the vessel (CFL control).
  double max_wave_speed() const;

  /// Volumetric flow rate Q = A U at the right end.
  double Q_right() const { return A_right() * U_right(); }
  double Q_left() const { return A_left() * U_left(); }

  /// Checkpoint the evolving state: (A, U) fields and ghost traces.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  void rhs(const la::Vector& A, const la::Vector& U, la::Vector& dA, la::Vector& dU) const;

  // analyze: no-checkpoint (constructor configuration, validated at load)
  VesselParams prm_;
  // analyze: no-checkpoint (quadrature rule, derived from prm_.order)
  sem::GllRule rule_;
  // analyze: no-checkpoint (derived from rule_ in the constructor)
  la::DenseMatrix D_;     // reference differentiation matrix
  // analyze: no-checkpoint (derived from prm_ in the constructor)
  double jac_;            // dx_elem / 2
  // analyze: no-checkpoint (derived from prm_/rule_ in the constructor)
  la::Vector x_;          // node coordinates (duplicated at element joints)
  la::Vector A_, U_;
  double ghost_Al_, ghost_Ul_, ghost_Ar_, ghost_Ur_;
};

}  // namespace nektar1d
