#include "wpod/wpod.hpp"

#include "resilience/blob_la.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/eig.hpp"
#include "la/simd.hpp"

namespace wpod {

la::Vector WpodResult::mean_at(std::size_t t) const {
  if (spatial_modes.empty()) return {};
  la::Vector m(spatial_modes[0].size(), 0.0);
  for (std::size_t k = 0; k < k_mean && k < spatial_modes.size(); ++k)
    la::simd::axpy(temporal(t, k), spatial_modes[k].data(), m.data(), m.size());
  return m;
}

la::Vector WpodResult::fluctuation_at(std::size_t t, const la::Vector& snapshot) const {
  la::Vector m = mean_at(t);
  la::Vector f(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) f[i] = snapshot[i] - m[i];
  return f;
}

WpodResult analyze(const std::vector<la::Vector>& snapshots, const WpodOptions& opt,
                   std::size_t keep_modes) {
  const std::size_t nt = snapshots.size();
  if (nt < 2) throw std::invalid_argument("wpod::analyze: need >= 2 snapshots");
  const std::size_t nx = snapshots[0].size();
  for (const auto& s : snapshots)
    if (s.size() != nx) throw std::invalid_argument("wpod::analyze: ragged snapshots");

  // method of snapshots: C_ij = <u_i, u_j> / nt
  la::DenseMatrix C(nt, nt);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t j = i; j < nt; ++j) {
      const double c =
          la::simd::dot(snapshots[i].data(), snapshots[j].data(), nx) / static_cast<double>(nt);
      C(i, j) = c;
      C(j, i) = c;
    }

  auto eig = la::eig_symmetric(C);

  WpodResult out;
  out.eigenvalues = eig.values;

  const std::size_t k_keep = keep_modes == 0 ? nt : std::min(keep_modes, nt);
  out.spatial_modes.reserve(k_keep);
  out.temporal = la::DenseMatrix(nt, k_keep);

  for (std::size_t k = 0; k < k_keep; ++k) {
    const double lam = eig.values[k];
    if (lam <= 1e-300) break;
    // phi_k = sum_i V_ik u_i / sqrt(lam * nt)
    la::Vector phi(nx, 0.0);
    const double scale = 1.0 / std::sqrt(lam * static_cast<double>(nt));
    for (std::size_t i = 0; i < nt; ++i)
      la::simd::axpy(eig.vecs(i, k) * scale, snapshots[i].data(), phi.data(), nx);
    // a_k(t_i) = sqrt(lam * nt) V_ik
    for (std::size_t i = 0; i < nt; ++i)
      out.temporal(i, k) = std::sqrt(lam * static_cast<double>(nt)) * eig.vecs(i, k);
    out.spatial_modes.push_back(std::move(phi));
  }

  // adaptive split: thermal plateau level = median of the tail half of the
  // spectrum; mean modes are those clearly above it
  const std::size_t kept = out.spatial_modes.size();
  std::vector<double> tail;
  for (std::size_t k = kept / 2; k < kept; ++k) tail.push_back(out.eigenvalues[k]);
  if (tail.empty()) tail.push_back(out.eigenvalues[kept > 0 ? kept - 1 : 0]);
  std::nth_element(tail.begin(), tail.begin() + tail.size() / 2, tail.end());
  out.noise_floor = std::max(tail[tail.size() / 2], 0.0);

  std::size_t km = 0;
  for (std::size_t k = 0; k < kept; ++k) {
    if (out.eigenvalues[k] > opt.noise_gap * out.noise_floor)
      km = k + 1;
    else
      break;
  }
  if (km == 0 && kept > 0) km = 1;  // always keep the most energetic mode
  if (opt.max_mean_modes > 0) km = std::min(km, opt.max_mean_modes);
  out.k_mean = km;
  return out;
}

StreamingWpod::StreamingWpod() : StreamingWpod(Options{}) {}

StreamingWpod::StreamingWpod(Options opt) : opt_(opt), window_(opt.initial_window) {
  if (opt_.min_window < 2 || opt_.max_window < opt_.min_window || opt_.stride == 0)
    throw std::invalid_argument("StreamingWpod: bad options");
  window_ = std::clamp(window_, opt_.min_window, opt_.max_window);
}

std::optional<WpodResult> StreamingWpod::push(la::Vector snapshot) {
  buf_.push_back(std::move(snapshot));
  while (buf_.size() > opt_.max_window) buf_.pop_front();
  ++since_last_;
  if (buf_.size() < window_ || since_last_ < opt_.stride) return std::nullopt;
  since_last_ = 0;

  std::vector<la::Vector> win(buf_.end() - static_cast<long>(window_), buf_.end());
  auto res = analyze(win, opt_.wpod);
  ++analyses_;

  // Adapt the window from the energy concentration of the spectrum: the
  // number of modes carrying 90% of the energy. A stationary flow (one
  // dominant structure + noise) concentrates energy in a few modes; a flow
  // that decorrelates within the window spreads it over many.
  double total = 0.0;
  for (std::size_t k = 0; k < res.eigenvalues.size(); ++k)
    total += std::max(res.eigenvalues[k], 0.0);
  std::size_t k90 = 0;
  double acc = 0.0;
  while (k90 < res.eigenvalues.size() && acc < 0.9 * total)
    acc += std::max(res.eigenvalues[k90++], 0.0);

  const auto grow_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(opt_.grow_fraction * static_cast<double>(window_)));
  if (static_cast<double>(k90) > opt_.shrink_fraction * static_cast<double>(window_))
    window_ = std::max(opt_.min_window, window_ / 2);
  else if (k90 <= grow_cap)
    window_ = std::min(opt_.max_window, window_ * 2);
  return res;
}

la::Vector standard_average(const std::vector<la::Vector>& snapshots) {
  if (snapshots.empty()) return {};
  la::Vector m(snapshots[0].size(), 0.0);
  for (const auto& s : snapshots)
    la::simd::axpy(1.0, s.data(), m.data(), m.size());
  la::simd::scale(1.0 / static_cast<double>(snapshots.size()), m.data(), m.size());
  return m;
}

void StreamingWpod::save_state(resilience::BlobWriter& w) const {
  w.pod(static_cast<std::uint64_t>(window_));
  w.pod(static_cast<std::uint64_t>(since_last_));
  w.pod(static_cast<std::uint64_t>(analyses_));
  resilience::put_vector_deque(w, buf_);
}

void StreamingWpod::load_state(resilience::BlobReader& r) {
  window_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
  since_last_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
  analyses_ = static_cast<std::size_t>(r.pod<std::uint64_t>());
  resilience::get_vector_deque(r, buf_);
}

}  // namespace wpod
