#pragma once
// Window proper orthogonal decomposition (paper Sec. 3.4): a co-processing
// tool that splits noisy atomistic velocity snapshots into an ensemble mean
// (the few fast-converging, correlated low modes) and thermal fluctuations
// (the flat tail of the eigenspectrum), via the method of snapshots.
//
//   u(t, x) ~= sum_{k < k_mean} a_k(t) phi_k(x)     (ensemble average)
//   u'(t, x) = u(t, x) - mean                        (fluctuations)
//
// The split index k_mean is chosen adaptively from the eigenvalue
// convergence rate: thermal modes form a plateau whose level is estimated
// from the spectrum tail.

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "la/dense.hpp"
#include "la/vector.hpp"

namespace resilience {
class BlobWriter;
class BlobReader;
}  // namespace resilience

namespace wpod {

struct WpodOptions {
  /// Modes with eigenvalue > noise_gap * (tail plateau level) belong to the
  /// ensemble mean.
  double noise_gap = 10.0;
  /// Cap on the number of mean modes (0 = no cap).
  std::size_t max_mean_modes = 0;
};

struct WpodResult {
  la::Vector eigenvalues;                ///< descending, size = #snapshots
  std::vector<la::Vector> spatial_modes; ///< phi_k, orthonormal, size k_kept
  la::DenseMatrix temporal;              ///< a_k(t): (#snapshots) x k_kept
  std::size_t k_mean = 0;                ///< modes forming the ensemble mean
  double noise_floor = 0.0;              ///< estimated thermal plateau level

  /// Ensemble-average field at snapshot t (sum of the first k_mean modes).
  la::Vector mean_at(std::size_t t) const;
  /// Fluctuation field at snapshot t (needs the original snapshot).
  la::Vector fluctuation_at(std::size_t t, const la::Vector& snapshot) const;
};

/// Analyze one window of snapshots (each a field sampled over spatial bins).
/// Keeps up to keep_modes modes (0 = all).
WpodResult analyze(const std::vector<la::Vector>& snapshots, const WpodOptions& opt = {},
                   std::size_t keep_modes = 0);

/// Plain per-bin time average of the window (the "standard averaging" WPOD
/// is compared against in Fig. 7).
la::Vector standard_average(const std::vector<la::Vector>& snapshots);

/// Streaming WPOD: the paper extends the method of snapshots "to analyze a
/// certain space-time window adaptively" as a co-processing tool. This
/// analyzer keeps a moving window of recent snapshots; each push() may emit
/// a completed analysis. The window length adapts to what the eigenspectrum
/// reports:
///   * many mean modes (k_mean large)  -> the flow decorrelates within the
///     window (non-stationarity): shrink it,
///   * k_mean small and stable         -> statistics are stationary: grow
///     the window for better averaging.
class StreamingWpod {
public:
  struct Options {
    std::size_t initial_window = 16;
    std::size_t min_window = 8;
    std::size_t max_window = 64;
    std::size_t stride = 8;  ///< snapshots between successive analyses
    /// shrink when k_mean > shrink_fraction * window; grow when
    /// k_mean < grow_fraction * window
    double shrink_fraction = 0.25;
    double grow_fraction = 0.08;
    WpodOptions wpod;
  };

  StreamingWpod();  // default options (GCC <13 rejects `Options opt = {}` here)
  explicit StreamingWpod(Options opt);

  /// Feed one snapshot; returns a completed window analysis when one is due
  /// (std::nullopt otherwise).
  std::optional<WpodResult> push(la::Vector snapshot);

  std::size_t window() const { return window_; }
  std::size_t analyses_done() const { return analyses_; }

  /// Checkpoint the adaptive window state: current window length, stride
  /// phase, analysis count and the buffered snapshots.
  void save_state(resilience::BlobWriter& w) const;
  void load_state(resilience::BlobReader& r);

private:
  // analyze: no-checkpoint (constructor configuration)
  Options opt_;
  std::size_t window_;
  std::size_t since_last_ = 0;
  std::size_t analyses_ = 0;
  std::deque<la::Vector> buf_;
};

}  // namespace wpod
