# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/xmp_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/sem_test[1]_include.cmake")
include("/root/repo/build/tests/nektar1d_test[1]_include.cmake")
include("/root/repo/build/tests/dpd_test[1]_include.cmake")
include("/root/repo/build/tests/wpod_test[1]_include.cmake")
include("/root/repo/build/tests/coupling_test[1]_include.cmake")
include("/root/repo/build/tests/net1d2d_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_mci_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sem3d_test[1]_include.cmake")
