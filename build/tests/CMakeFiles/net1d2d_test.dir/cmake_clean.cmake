file(REMOVE_RECURSE
  "CMakeFiles/net1d2d_test.dir/net1d2d_test.cpp.o"
  "CMakeFiles/net1d2d_test.dir/net1d2d_test.cpp.o.d"
  "net1d2d_test"
  "net1d2d_test.pdb"
  "net1d2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net1d2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
