# Empty dependencies file for net1d2d_test.
# This may be replaced when dependencies are built.
