file(REMOVE_RECURSE
  "CMakeFiles/integration_mci_test.dir/integration_mci_test.cpp.o"
  "CMakeFiles/integration_mci_test.dir/integration_mci_test.cpp.o.d"
  "integration_mci_test"
  "integration_mci_test.pdb"
  "integration_mci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_mci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
