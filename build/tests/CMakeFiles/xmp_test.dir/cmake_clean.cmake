file(REMOVE_RECURSE
  "CMakeFiles/xmp_test.dir/xmp_test.cpp.o"
  "CMakeFiles/xmp_test.dir/xmp_test.cpp.o.d"
  "xmp_test"
  "xmp_test.pdb"
  "xmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
