file(REMOVE_RECURSE
  "CMakeFiles/dpd_test.dir/dpd_test.cpp.o"
  "CMakeFiles/dpd_test.dir/dpd_test.cpp.o.d"
  "dpd_test"
  "dpd_test.pdb"
  "dpd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
