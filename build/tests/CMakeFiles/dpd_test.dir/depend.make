# Empty dependencies file for dpd_test.
# This may be replaced when dependencies are built.
