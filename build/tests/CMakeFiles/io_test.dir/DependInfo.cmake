
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/io_test.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/io.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dpd/CMakeFiles/dpd.dir/DependInfo.cmake"
  "/root/repo/build/src/nektar1d/CMakeFiles/nektar1d.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
