# Empty dependencies file for wpod_test.
# This may be replaced when dependencies are built.
