file(REMOVE_RECURSE
  "CMakeFiles/wpod_test.dir/wpod_test.cpp.o"
  "CMakeFiles/wpod_test.dir/wpod_test.cpp.o.d"
  "wpod_test"
  "wpod_test.pdb"
  "wpod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
