# Empty dependencies file for nektar1d_test.
# This may be replaced when dependencies are built.
