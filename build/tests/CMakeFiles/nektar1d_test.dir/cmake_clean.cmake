file(REMOVE_RECURSE
  "CMakeFiles/nektar1d_test.dir/nektar1d_test.cpp.o"
  "CMakeFiles/nektar1d_test.dir/nektar1d_test.cpp.o.d"
  "nektar1d_test"
  "nektar1d_test.pdb"
  "nektar1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nektar1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
