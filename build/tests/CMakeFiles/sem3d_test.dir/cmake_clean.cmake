file(REMOVE_RECURSE
  "CMakeFiles/sem3d_test.dir/sem3d_test.cpp.o"
  "CMakeFiles/sem3d_test.dir/sem3d_test.cpp.o.d"
  "sem3d_test"
  "sem3d_test.pdb"
  "sem3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
