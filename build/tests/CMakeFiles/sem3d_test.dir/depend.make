# Empty dependencies file for sem3d_test.
# This may be replaced when dependencies are built.
