file(REMOVE_RECURSE
  "CMakeFiles/ablation_initial_guess.dir/ablation_initial_guess.cpp.o"
  "CMakeFiles/ablation_initial_guess.dir/ablation_initial_guess.cpp.o.d"
  "ablation_initial_guess"
  "ablation_initial_guess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_initial_guess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
