
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_initial_guess.cpp" "bench/CMakeFiles/ablation_initial_guess.dir/ablation_initial_guess.cpp.o" "gcc" "bench/CMakeFiles/ablation_initial_guess.dir/ablation_initial_guess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
