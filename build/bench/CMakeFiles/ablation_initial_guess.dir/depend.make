# Empty dependencies file for ablation_initial_guess.
# This may be replaced when dependencies are built.
