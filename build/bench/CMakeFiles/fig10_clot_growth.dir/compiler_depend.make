# Empty compiler generated dependencies file for fig10_clot_growth.
# This may be replaced when dependencies are built.
