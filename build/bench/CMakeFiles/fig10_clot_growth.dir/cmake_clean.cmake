file(REMOVE_RECURSE
  "CMakeFiles/fig10_clot_growth.dir/fig10_clot_growth.cpp.o"
  "CMakeFiles/fig10_clot_growth.dir/fig10_clot_growth.cpp.o.d"
  "fig10_clot_growth"
  "fig10_clot_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_clot_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
