# Empty compiler generated dependencies file for table4_strong_scaling.
# This may be replaced when dependencies are built.
