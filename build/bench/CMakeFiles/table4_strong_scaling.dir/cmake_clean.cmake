file(REMOVE_RECURSE
  "CMakeFiles/table4_strong_scaling.dir/table4_strong_scaling.cpp.o"
  "CMakeFiles/table4_strong_scaling.dir/table4_strong_scaling.cpp.o.d"
  "table4_strong_scaling"
  "table4_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
