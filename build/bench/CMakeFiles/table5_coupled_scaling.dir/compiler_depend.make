# Empty compiler generated dependencies file for table5_coupled_scaling.
# This may be replaced when dependencies are built.
