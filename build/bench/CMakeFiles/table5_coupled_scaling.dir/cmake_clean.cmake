file(REMOVE_RECURSE
  "CMakeFiles/table5_coupled_scaling.dir/table5_coupled_scaling.cpp.o"
  "CMakeFiles/table5_coupled_scaling.dir/table5_coupled_scaling.cpp.o.d"
  "table5_coupled_scaling"
  "table5_coupled_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_coupled_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
