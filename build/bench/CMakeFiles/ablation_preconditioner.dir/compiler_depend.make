# Empty compiler generated dependencies file for ablation_preconditioner.
# This may be replaced when dependencies are built.
