file(REMOVE_RECURSE
  "CMakeFiles/ablation_preconditioner.dir/ablation_preconditioner.cpp.o"
  "CMakeFiles/ablation_preconditioner.dir/ablation_preconditioner.cpp.o.d"
  "ablation_preconditioner"
  "ablation_preconditioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
