file(REMOVE_RECURSE
  "CMakeFiles/table3_weak_scaling.dir/table3_weak_scaling.cpp.o"
  "CMakeFiles/table3_weak_scaling.dir/table3_weak_scaling.cpp.o.d"
  "table3_weak_scaling"
  "table3_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
