# Empty dependencies file for fig5_time_progression.
# This may be replaced when dependencies are built.
