file(REMOVE_RECURSE
  "CMakeFiles/fig5_time_progression.dir/fig5_time_progression.cpp.o"
  "CMakeFiles/fig5_time_progression.dir/fig5_time_progression.cpp.o.d"
  "fig5_time_progression"
  "fig5_time_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_time_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
