# Empty compiler generated dependencies file for fig7_wpod_averaging.
# This may be replaced when dependencies are built.
