file(REMOVE_RECURSE
  "CMakeFiles/fig7_wpod_averaging.dir/fig7_wpod_averaging.cpp.o"
  "CMakeFiles/fig7_wpod_averaging.dir/fig7_wpod_averaging.cpp.o.d"
  "fig7_wpod_averaging"
  "fig7_wpod_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_wpod_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
