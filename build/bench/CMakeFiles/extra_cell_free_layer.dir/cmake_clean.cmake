file(REMOVE_RECURSE
  "CMakeFiles/extra_cell_free_layer.dir/extra_cell_free_layer.cpp.o"
  "CMakeFiles/extra_cell_free_layer.dir/extra_cell_free_layer.cpp.o.d"
  "extra_cell_free_layer"
  "extra_cell_free_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_cell_free_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
