# Empty compiler generated dependencies file for extra_cell_free_layer.
# This may be replaced when dependencies are built.
