file(REMOVE_RECURSE
  "CMakeFiles/ablation_replicas.dir/ablation_replicas.cpp.o"
  "CMakeFiles/ablation_replicas.dir/ablation_replicas.cpp.o.d"
  "ablation_replicas"
  "ablation_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
