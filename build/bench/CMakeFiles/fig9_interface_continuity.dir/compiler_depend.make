# Empty compiler generated dependencies file for fig9_interface_continuity.
# This may be replaced when dependencies are built.
