file(REMOVE_RECURSE
  "CMakeFiles/fig9_interface_continuity.dir/fig9_interface_continuity.cpp.o"
  "CMakeFiles/fig9_interface_continuity.dir/fig9_interface_continuity.cpp.o.d"
  "fig9_interface_continuity"
  "fig9_interface_continuity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_interface_continuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
