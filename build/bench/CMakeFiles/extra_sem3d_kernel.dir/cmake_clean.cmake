file(REMOVE_RECURSE
  "CMakeFiles/extra_sem3d_kernel.dir/extra_sem3d_kernel.cpp.o"
  "CMakeFiles/extra_sem3d_kernel.dir/extra_sem3d_kernel.cpp.o.d"
  "extra_sem3d_kernel"
  "extra_sem3d_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_sem3d_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
