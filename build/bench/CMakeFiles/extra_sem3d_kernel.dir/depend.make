# Empty dependencies file for extra_sem3d_kernel.
# This may be replaced when dependencies are built.
