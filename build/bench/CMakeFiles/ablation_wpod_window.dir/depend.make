# Empty dependencies file for ablation_wpod_window.
# This may be replaced when dependencies are built.
