file(REMOVE_RECURSE
  "CMakeFiles/ablation_wpod_window.dir/ablation_wpod_window.cpp.o"
  "CMakeFiles/ablation_wpod_window.dir/ablation_wpod_window.cpp.o.d"
  "ablation_wpod_window"
  "ablation_wpod_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wpod_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
