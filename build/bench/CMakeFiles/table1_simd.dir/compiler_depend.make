# Empty compiler generated dependencies file for table1_simd.
# This may be replaced when dependencies are built.
