file(REMOVE_RECURSE
  "CMakeFiles/table1_simd.dir/table1_simd.cpp.o"
  "CMakeFiles/table1_simd.dir/table1_simd.cpp.o.d"
  "table1_simd"
  "table1_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
