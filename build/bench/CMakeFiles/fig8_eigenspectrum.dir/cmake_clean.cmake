file(REMOVE_RECURSE
  "CMakeFiles/fig8_eigenspectrum.dir/fig8_eigenspectrum.cpp.o"
  "CMakeFiles/fig8_eigenspectrum.dir/fig8_eigenspectrum.cpp.o.d"
  "fig8_eigenspectrum"
  "fig8_eigenspectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_eigenspectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
