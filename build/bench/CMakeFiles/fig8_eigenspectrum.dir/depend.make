# Empty dependencies file for fig8_eigenspectrum.
# This may be replaced when dependencies are built.
