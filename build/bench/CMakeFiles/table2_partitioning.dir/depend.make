# Empty dependencies file for table2_partitioning.
# This may be replaced when dependencies are built.
