file(REMOVE_RECURSE
  "CMakeFiles/table2_partitioning.dir/table2_partitioning.cpp.o"
  "CMakeFiles/table2_partitioning.dir/table2_partitioning.cpp.o.d"
  "table2_partitioning"
  "table2_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
