# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coupled3d "/root/repo/build/examples/coupled3d")
set_tests_properties(example_coupled3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aneurysm_clot "/root/repo/build/examples/aneurysm_clot")
set_tests_properties(example_aneurysm_clot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wpod_analysis "/root/repo/build/examples/wpod_analysis")
set_tests_properties(example_wpod_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiscale_viz "/root/repo/build/examples/multiscale_viz" "/root/repo/build/examples/viz_out")
set_tests_properties(example_multiscale_viz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
