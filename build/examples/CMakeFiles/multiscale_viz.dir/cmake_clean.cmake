file(REMOVE_RECURSE
  "CMakeFiles/multiscale_viz.dir/multiscale_viz.cpp.o"
  "CMakeFiles/multiscale_viz.dir/multiscale_viz.cpp.o.d"
  "multiscale_viz"
  "multiscale_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiscale_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
