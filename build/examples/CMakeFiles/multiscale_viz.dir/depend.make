# Empty dependencies file for multiscale_viz.
# This may be replaced when dependencies are built.
