# Empty dependencies file for coupled3d.
# This may be replaced when dependencies are built.
