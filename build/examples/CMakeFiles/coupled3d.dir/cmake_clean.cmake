file(REMOVE_RECURSE
  "CMakeFiles/coupled3d.dir/coupled3d.cpp.o"
  "CMakeFiles/coupled3d.dir/coupled3d.cpp.o.d"
  "coupled3d"
  "coupled3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
