# Empty dependencies file for wpod_analysis.
# This may be replaced when dependencies are built.
