file(REMOVE_RECURSE
  "CMakeFiles/wpod_analysis.dir/wpod_analysis.cpp.o"
  "CMakeFiles/wpod_analysis.dir/wpod_analysis.cpp.o.d"
  "wpod_analysis"
  "wpod_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpod_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
