# Empty dependencies file for arterial_tree.
# This may be replaced when dependencies are built.
