file(REMOVE_RECURSE
  "CMakeFiles/arterial_tree.dir/arterial_tree.cpp.o"
  "CMakeFiles/arterial_tree.dir/arterial_tree.cpp.o.d"
  "arterial_tree"
  "arterial_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arterial_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
