file(REMOVE_RECURSE
  "CMakeFiles/aneurysm_clot.dir/aneurysm_clot.cpp.o"
  "CMakeFiles/aneurysm_clot.dir/aneurysm_clot.cpp.o.d"
  "aneurysm_clot"
  "aneurysm_clot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneurysm_clot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
