# Empty dependencies file for aneurysm_clot.
# This may be replaced when dependencies are built.
