# Empty dependencies file for xmp.
# This may be replaced when dependencies are built.
