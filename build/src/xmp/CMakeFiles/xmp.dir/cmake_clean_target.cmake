file(REMOVE_RECURSE
  "libxmp.a"
)
