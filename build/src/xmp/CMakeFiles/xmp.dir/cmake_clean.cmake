file(REMOVE_RECURSE
  "CMakeFiles/xmp.dir/comm.cpp.o"
  "CMakeFiles/xmp.dir/comm.cpp.o.d"
  "libxmp.a"
  "libxmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
