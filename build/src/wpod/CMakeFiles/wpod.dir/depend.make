# Empty dependencies file for wpod.
# This may be replaced when dependencies are built.
