file(REMOVE_RECURSE
  "libwpod.a"
)
