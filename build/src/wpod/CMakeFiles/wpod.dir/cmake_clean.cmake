file(REMOVE_RECURSE
  "CMakeFiles/wpod.dir/wpod.cpp.o"
  "CMakeFiles/wpod.dir/wpod.cpp.o.d"
  "libwpod.a"
  "libwpod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
