
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/graph.cpp" "src/mesh/CMakeFiles/mesh.dir/graph.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/graph.cpp.o.d"
  "/root/repo/src/mesh/partition.cpp" "src/mesh/CMakeFiles/mesh.dir/partition.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/partition.cpp.o.d"
  "/root/repo/src/mesh/quadmesh.cpp" "src/mesh/CMakeFiles/mesh.dir/quadmesh.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/quadmesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
