file(REMOVE_RECURSE
  "CMakeFiles/mesh.dir/graph.cpp.o"
  "CMakeFiles/mesh.dir/graph.cpp.o.d"
  "CMakeFiles/mesh.dir/partition.cpp.o"
  "CMakeFiles/mesh.dir/partition.cpp.o.d"
  "CMakeFiles/mesh.dir/quadmesh.cpp.o"
  "CMakeFiles/mesh.dir/quadmesh.cpp.o.d"
  "libmesh.a"
  "libmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
