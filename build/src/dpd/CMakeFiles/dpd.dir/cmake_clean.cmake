file(REMOVE_RECURSE
  "CMakeFiles/dpd.dir/bonds.cpp.o"
  "CMakeFiles/dpd.dir/bonds.cpp.o.d"
  "CMakeFiles/dpd.dir/buffers.cpp.o"
  "CMakeFiles/dpd.dir/buffers.cpp.o.d"
  "CMakeFiles/dpd.dir/geometry.cpp.o"
  "CMakeFiles/dpd.dir/geometry.cpp.o.d"
  "CMakeFiles/dpd.dir/inflow.cpp.o"
  "CMakeFiles/dpd.dir/inflow.cpp.o.d"
  "CMakeFiles/dpd.dir/platelets.cpp.o"
  "CMakeFiles/dpd.dir/platelets.cpp.o.d"
  "CMakeFiles/dpd.dir/sampling.cpp.o"
  "CMakeFiles/dpd.dir/sampling.cpp.o.d"
  "CMakeFiles/dpd.dir/system.cpp.o"
  "CMakeFiles/dpd.dir/system.cpp.o.d"
  "CMakeFiles/dpd.dir/viscometry.cpp.o"
  "CMakeFiles/dpd.dir/viscometry.cpp.o.d"
  "libdpd.a"
  "libdpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
