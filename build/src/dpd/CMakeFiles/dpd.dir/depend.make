# Empty dependencies file for dpd.
# This may be replaced when dependencies are built.
