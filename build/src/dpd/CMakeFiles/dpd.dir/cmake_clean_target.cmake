file(REMOVE_RECURSE
  "libdpd.a"
)
