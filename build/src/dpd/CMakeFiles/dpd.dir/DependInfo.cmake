
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpd/bonds.cpp" "src/dpd/CMakeFiles/dpd.dir/bonds.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/bonds.cpp.o.d"
  "/root/repo/src/dpd/buffers.cpp" "src/dpd/CMakeFiles/dpd.dir/buffers.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/buffers.cpp.o.d"
  "/root/repo/src/dpd/geometry.cpp" "src/dpd/CMakeFiles/dpd.dir/geometry.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/geometry.cpp.o.d"
  "/root/repo/src/dpd/inflow.cpp" "src/dpd/CMakeFiles/dpd.dir/inflow.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/inflow.cpp.o.d"
  "/root/repo/src/dpd/platelets.cpp" "src/dpd/CMakeFiles/dpd.dir/platelets.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/platelets.cpp.o.d"
  "/root/repo/src/dpd/sampling.cpp" "src/dpd/CMakeFiles/dpd.dir/sampling.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/sampling.cpp.o.d"
  "/root/repo/src/dpd/system.cpp" "src/dpd/CMakeFiles/dpd.dir/system.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/system.cpp.o.d"
  "/root/repo/src/dpd/viscometry.cpp" "src/dpd/CMakeFiles/dpd.dir/viscometry.cpp.o" "gcc" "src/dpd/CMakeFiles/dpd.dir/viscometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
