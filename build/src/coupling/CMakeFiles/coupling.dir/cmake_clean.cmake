file(REMOVE_RECURSE
  "CMakeFiles/coupling.dir/cdc.cpp.o"
  "CMakeFiles/coupling.dir/cdc.cpp.o.d"
  "CMakeFiles/coupling.dir/cdc3d.cpp.o"
  "CMakeFiles/coupling.dir/cdc3d.cpp.o.d"
  "CMakeFiles/coupling.dir/mci.cpp.o"
  "CMakeFiles/coupling.dir/mci.cpp.o.d"
  "CMakeFiles/coupling.dir/multipatch.cpp.o"
  "CMakeFiles/coupling.dir/multipatch.cpp.o.d"
  "CMakeFiles/coupling.dir/net1d2d.cpp.o"
  "CMakeFiles/coupling.dir/net1d2d.cpp.o.d"
  "CMakeFiles/coupling.dir/replica.cpp.o"
  "CMakeFiles/coupling.dir/replica.cpp.o.d"
  "CMakeFiles/coupling.dir/triple.cpp.o"
  "CMakeFiles/coupling.dir/triple.cpp.o.d"
  "libcoupling.a"
  "libcoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
