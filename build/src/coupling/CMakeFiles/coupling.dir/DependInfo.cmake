
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coupling/cdc.cpp" "src/coupling/CMakeFiles/coupling.dir/cdc.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/cdc.cpp.o.d"
  "/root/repo/src/coupling/cdc3d.cpp" "src/coupling/CMakeFiles/coupling.dir/cdc3d.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/cdc3d.cpp.o.d"
  "/root/repo/src/coupling/mci.cpp" "src/coupling/CMakeFiles/coupling.dir/mci.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/mci.cpp.o.d"
  "/root/repo/src/coupling/multipatch.cpp" "src/coupling/CMakeFiles/coupling.dir/multipatch.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/multipatch.cpp.o.d"
  "/root/repo/src/coupling/net1d2d.cpp" "src/coupling/CMakeFiles/coupling.dir/net1d2d.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/net1d2d.cpp.o.d"
  "/root/repo/src/coupling/replica.cpp" "src/coupling/CMakeFiles/coupling.dir/replica.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/replica.cpp.o.d"
  "/root/repo/src/coupling/triple.cpp" "src/coupling/CMakeFiles/coupling.dir/triple.cpp.o" "gcc" "src/coupling/CMakeFiles/coupling.dir/triple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xmp/CMakeFiles/xmp.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/dpd/CMakeFiles/dpd.dir/DependInfo.cmake"
  "/root/repo/build/src/nektar1d/CMakeFiles/nektar1d.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
