file(REMOVE_RECURSE
  "libcoupling.a"
)
