# Empty compiler generated dependencies file for coupling.
# This may be replaced when dependencies are built.
