# Empty dependencies file for sem.
# This may be replaced when dependencies are built.
