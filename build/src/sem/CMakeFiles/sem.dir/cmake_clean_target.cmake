file(REMOVE_RECURSE
  "libsem.a"
)
