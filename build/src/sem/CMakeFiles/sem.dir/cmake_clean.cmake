file(REMOVE_RECURSE
  "CMakeFiles/sem.dir/discretization.cpp.o"
  "CMakeFiles/sem.dir/discretization.cpp.o.d"
  "CMakeFiles/sem.dir/gll.cpp.o"
  "CMakeFiles/sem.dir/gll.cpp.o.d"
  "CMakeFiles/sem.dir/helmholtz.cpp.o"
  "CMakeFiles/sem.dir/helmholtz.cpp.o.d"
  "CMakeFiles/sem.dir/hex3d.cpp.o"
  "CMakeFiles/sem.dir/hex3d.cpp.o.d"
  "CMakeFiles/sem.dir/ns2d.cpp.o"
  "CMakeFiles/sem.dir/ns2d.cpp.o.d"
  "CMakeFiles/sem.dir/ns3d.cpp.o"
  "CMakeFiles/sem.dir/ns3d.cpp.o.d"
  "CMakeFiles/sem.dir/operators.cpp.o"
  "CMakeFiles/sem.dir/operators.cpp.o.d"
  "libsem.a"
  "libsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
