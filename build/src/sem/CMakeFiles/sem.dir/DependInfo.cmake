
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/discretization.cpp" "src/sem/CMakeFiles/sem.dir/discretization.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/discretization.cpp.o.d"
  "/root/repo/src/sem/gll.cpp" "src/sem/CMakeFiles/sem.dir/gll.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/gll.cpp.o.d"
  "/root/repo/src/sem/helmholtz.cpp" "src/sem/CMakeFiles/sem.dir/helmholtz.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/helmholtz.cpp.o.d"
  "/root/repo/src/sem/hex3d.cpp" "src/sem/CMakeFiles/sem.dir/hex3d.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/hex3d.cpp.o.d"
  "/root/repo/src/sem/ns2d.cpp" "src/sem/CMakeFiles/sem.dir/ns2d.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/ns2d.cpp.o.d"
  "/root/repo/src/sem/ns3d.cpp" "src/sem/CMakeFiles/sem.dir/ns3d.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/ns3d.cpp.o.d"
  "/root/repo/src/sem/operators.cpp" "src/sem/CMakeFiles/sem.dir/operators.cpp.o" "gcc" "src/sem/CMakeFiles/sem.dir/operators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
