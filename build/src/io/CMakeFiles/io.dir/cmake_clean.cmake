file(REMOVE_RECURSE
  "CMakeFiles/io.dir/vtk.cpp.o"
  "CMakeFiles/io.dir/vtk.cpp.o.d"
  "libio.a"
  "libio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
