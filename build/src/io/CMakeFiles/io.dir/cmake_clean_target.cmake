file(REMOVE_RECURSE
  "libio.a"
)
