file(REMOVE_RECURSE
  "CMakeFiles/la.dir/cg.cpp.o"
  "CMakeFiles/la.dir/cg.cpp.o.d"
  "CMakeFiles/la.dir/csr.cpp.o"
  "CMakeFiles/la.dir/csr.cpp.o.d"
  "CMakeFiles/la.dir/dense.cpp.o"
  "CMakeFiles/la.dir/dense.cpp.o.d"
  "CMakeFiles/la.dir/eig.cpp.o"
  "CMakeFiles/la.dir/eig.cpp.o.d"
  "CMakeFiles/la.dir/simd.cpp.o"
  "CMakeFiles/la.dir/simd.cpp.o.d"
  "CMakeFiles/la.dir/stats.cpp.o"
  "CMakeFiles/la.dir/stats.cpp.o.d"
  "libla.a"
  "libla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
