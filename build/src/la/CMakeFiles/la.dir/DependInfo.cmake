
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/cg.cpp" "src/la/CMakeFiles/la.dir/cg.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/cg.cpp.o.d"
  "/root/repo/src/la/csr.cpp" "src/la/CMakeFiles/la.dir/csr.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/csr.cpp.o.d"
  "/root/repo/src/la/dense.cpp" "src/la/CMakeFiles/la.dir/dense.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/dense.cpp.o.d"
  "/root/repo/src/la/eig.cpp" "src/la/CMakeFiles/la.dir/eig.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/eig.cpp.o.d"
  "/root/repo/src/la/simd.cpp" "src/la/CMakeFiles/la.dir/simd.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/simd.cpp.o.d"
  "/root/repo/src/la/stats.cpp" "src/la/CMakeFiles/la.dir/stats.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
