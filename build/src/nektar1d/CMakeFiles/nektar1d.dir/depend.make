# Empty dependencies file for nektar1d.
# This may be replaced when dependencies are built.
