file(REMOVE_RECURSE
  "libnektar1d.a"
)
