
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nektar1d/artery.cpp" "src/nektar1d/CMakeFiles/nektar1d.dir/artery.cpp.o" "gcc" "src/nektar1d/CMakeFiles/nektar1d.dir/artery.cpp.o.d"
  "/root/repo/src/nektar1d/network.cpp" "src/nektar1d/CMakeFiles/nektar1d.dir/network.cpp.o" "gcc" "src/nektar1d/CMakeFiles/nektar1d.dir/network.cpp.o.d"
  "/root/repo/src/nektar1d/tree.cpp" "src/nektar1d/CMakeFiles/nektar1d.dir/tree.cpp.o" "gcc" "src/nektar1d/CMakeFiles/nektar1d.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/sem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
