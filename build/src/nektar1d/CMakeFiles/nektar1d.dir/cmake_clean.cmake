file(REMOVE_RECURSE
  "CMakeFiles/nektar1d.dir/artery.cpp.o"
  "CMakeFiles/nektar1d.dir/artery.cpp.o.d"
  "CMakeFiles/nektar1d.dir/network.cpp.o"
  "CMakeFiles/nektar1d.dir/network.cpp.o.d"
  "CMakeFiles/nektar1d.dir/tree.cpp.o"
  "CMakeFiles/nektar1d.dir/tree.cpp.o.d"
  "libnektar1d.a"
  "libnektar1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nektar1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
