# CMake generated Testfile for 
# Source directory: /root/repo/src/nektar1d
# Build directory: /root/repo/build/src/nektar1d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
