// Quickstart: the smallest complete NektarG-style coupled simulation.
//
// A continuum channel (SEM Navier-Stokes) carries a steady flow; a DPD box
// is embedded in its middle; every coupling interval the continuum velocity
// is interpolated onto the atomistic inflow (scaled by Eq. 1) and the DPD
// solver advances with the Fig. 5 schedule. At the end we print the two
// velocity profiles side by side so you can see the coupling at work.
//
// The whole run is described by a scenario (docs/SCENARIOS.md): with no
// --scenario flag the built-in quickstart preset runs (identical to
// examples/scenarios/quickstart.json), so this main is only flag parsing,
// scenario loading, and the profile printout.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Flags (see docs/RESILIENCE.md for checkpoint/restart):
//   --scenario FILE          run a scenario JSON file instead of the preset
//   --intervals N            coupling intervals to run (default 20)
//   --checkpoint-every K     save a checkpoint every K intervals
//   --checkpoint-dir DIR     where checkpoints go (default ./quickstart-ckpt)
//   --restart DIR            resume from a checkpoint directory
//   --digest                 print a CRC32 digest of the final state
//                            (bitwise restart-equivalence checks)
//   --sweep FILE             expand the scenario by a sweep spec and run the
//                            whole ensemble (docs/SCENARIOS.md)
//   --pool N                 xmp rank pool for --sweep (0 = serial)

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/ensemble.hpp"
#include "scenario/flags.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  int intervals = -1;
  int checkpoint_every = -1;
  std::string checkpoint_dir;
  std::string restart_dir;
  std::string scenario_file;
  std::string sweep_file;
  int pool = 0;
  bool digest = false;
  scenario::Flags flags("quickstart");
  flags.add_string("--scenario", &scenario_file, "scenario JSON file (default: built-in preset)");
  flags.add_string("--sweep", &sweep_file,
                   "sweep JSON file: expand the scenario into an ensemble and run it");
  flags.add_int("--pool", &pool, "xmp rank pool for --sweep (default 0 = serial in-process)");
  flags.add_int("--intervals", &intervals, "coupling intervals to run");
  flags.add_int("--checkpoint-every", &checkpoint_every, "save a checkpoint every K intervals");
  flags.add_string("--checkpoint-dir", &checkpoint_dir, "where checkpoints go");
  flags.add_string("--restart", &restart_dir, "resume from a checkpoint directory");
  flags.add_flag("--digest", &digest, "print a CRC32 digest of the final state");
  if (!flags.parse(argc, argv)) return 2;

  std::printf("NektarG quickstart: continuum channel + embedded DPD box\n\n");

  scenario::Scenario sc;
  try {
    sc = scenario_file.empty() ? scenario::quickstart_preset()
                               : scenario::load_scenario_file(scenario_file);
  } catch (const scenario::JsonError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  if (!sweep_file.empty()) {
    // --sweep: run the whole parameter study through the ensemble engine
    // instead of a single scenario (docs/SCENARIOS.md "Parameter sweeps").
    scenario::EnsembleReport rep;
    std::vector<scenario::Variant> variants;
    try {
      const scenario::SweepSpec sweep = scenario::load_sweep_file(sweep_file);
      const scenario::Json base = scenario::serialize_scenario(sc);
      variants = scenario::EnsembleEngine::expand(base, sweep);
      scenario::EnsembleOptions eopts;
      eopts.pool = pool;
      rep = scenario::EnsembleEngine(base, sweep, eopts).run();
    } catch (const scenario::JsonError& e) {
      std::fprintf(stderr, "sweep error: %s\n", e.what());
      return 2;
    }
    std::printf("%-44s %-5s %-10s %s\n", "variant", "ok", "digest", "seconds");
    for (const auto& r : rep.variants) {
      const std::string& name = variants[r.index].name;
      if (r.ok)
        std::printf("%-44s %-5s %08x   %.2f\n", name.c_str(), "ok", r.digest, r.seconds);
      else
        std::printf("%-44s %-5s %s\n", name.c_str(), "FAIL", r.error.c_str());
    }
    std::printf("ensemble: %zu completed, %zu failed, %.2fs wall\n", rep.completed, rep.failed,
                rep.wall_seconds);
    return rep.failed == 0 ? 0 : 1;
  }

  scenario::RunnerOptions opts;
  opts.restart_dir = restart_dir;
  opts.intervals = intervals;
  opts.checkpoint_every = checkpoint_every;
  opts.checkpoint_dir = checkpoint_dir;
  opts.verbose = true;

  scenario::Runner runner(sc, opts);
  scenario::RunResult res;
  try {
    res = runner.run();
  } catch (const resilience::SnapshotError& e) {
    std::fprintf(stderr, "restart failed: %s\n", e.what());
    return 1;
  }

  if (digest) {
    // CRC32 over the concatenated component states: two runs arriving at the
    // same interval must print the same digest (restart-equivalence check).
    std::printf("STATE_DIGEST %08x\n", res.digest);
    return 0;
  }

  // --- compare the profiles across the interface ---
  auto profile = runner.sampler().snapshot();
  std::printf("%-8s %-14s %-14s\n", "y (NS)", "u continuum", "u DPD (scaled back)");
  for (std::size_t b = 0; b < profile.size(); ++b) {
    const double y = (static_cast<double>(b) + 0.5) / static_cast<double>(profile.size());
    const double u_ns = runner.eval_u(2.0, y);
    const double u_dpd = runner.scales().velocity_dpd_to_ns(profile[b]);
    std::printf("%-8.2f %-14.4f %-14.4f\n", y, u_ns, u_dpd);
  }
  std::printf("\nExchanges performed: %zu; DPD particles now: %zu "
              "(inserted %zu / deleted %zu by the flux BC)\n",
              runner.exchanges(), runner.dpd().size(), runner.flow_bc().inserted_total(),
              runner.flow_bc().deleted_total());
  return 0;
}
