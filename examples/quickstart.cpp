// Quickstart: the smallest complete NektarG-style coupled simulation.
//
// A continuum channel (SEM Navier-Stokes) carries a steady flow; a DPD box
// is embedded in its middle; every coupling interval the continuum velocity
// is interpolated onto the atomistic inflow (scaled by Eq. 1) and the DPD
// solver advances with the Fig. 5 schedule. At the end we print the two
// velocity profiles side by side so you can see the coupling at work.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Checkpoint/restart (see docs/RESILIENCE.md):
//   --intervals N            coupling intervals to run (default 20)
//   --checkpoint-every K     save a checkpoint every K intervals
//   --checkpoint-dir DIR     where checkpoints go (default ./quickstart-ckpt)
//   --restart DIR            resume from a checkpoint directory
//   --digest                 print a CRC32 digest of the final state
//                            (bitwise restart-equivalence checks)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coupling/cdc.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "mesh/quadmesh.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/snapshot.hpp"
#include "sem/ns2d.hpp"

int main(int argc, char** argv) {
  int intervals = 20;
  int checkpoint_every = 0;
  std::string checkpoint_dir = "quickstart-ckpt";
  std::string restart_dir;
  bool digest = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--intervals") && i + 1 < argc)
      intervals = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--checkpoint-every") && i + 1 < argc)
      checkpoint_every = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--checkpoint-dir") && i + 1 < argc)
      checkpoint_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--restart") && i + 1 < argc)
      restart_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--digest"))
      digest = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }
  const bool restarting = !restart_dir.empty();

  std::printf("NektarG quickstart: continuum channel + embedded DPD box\n\n");

  // --- 1. the continuum solver (macrovascular scale) ---
  auto mesh = mesh::QuadMesh::channel(/*L=*/4.0, /*H=*/1.0, /*nx=*/8, /*ny=*/2);
  sem::Discretization disc(mesh, /*order=*/4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.05;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(disc, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  if (!restarting) {
    std::printf("continuum: %zu SEM nodes, developing the flow...\n", disc.num_nodes());
    for (int s = 0; s < 300; ++s) ns.step();
  }

  // --- 2. the atomistic solver (mesovascular scale) ---
  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  if (!restarting) {
    sys.fill(/*density=*/3.0, dpd::kSolvent, /*seed=*/7, /*margin=*/0.1);
    std::printf("atomistic: %zu DPD particles\n\n", sys.size());
  }

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  // --- 3. glue them: unit scaling (Eq. 1) + Fig. 5 time progression ---
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;    // channel height in NS units
  scales.L_dpd = 10.0;  // the same height in DPD units
  scales.nu_ns = nsp.nu;
  scales.nu_dpd = 2.5;
  coupling::TimeProgression tp;
  tp.dt_ns = nsp.dt;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, /*region=*/{1.5, 2.5, 0.0, 1.0}, scales, tp);

  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 10;
  dpd::FieldSampler sampler(sys, sp);

  // --- checkpoint wiring: every stateful object registers by name ---
  resilience::CheckpointCoordinator coord;
  coord.add("ns2d", ns);
  coord.add("dpd", sys);
  coord.add("flowbc", bc);
  coord.add("cdc", cdc);
  coord.add("sampler", sampler);

  int start_interval = 0;
  if (restarting) {
    try {
      const auto info = coord.load(restart_dir);
      start_interval = static_cast<int>(info.step);
    } catch (const resilience::SnapshotError& e) {
      std::fprintf(stderr, "restart failed: %s\n", e.what());
      return 1;
    }
    std::printf("restarted from %s: interval %d, t_ns = %.4f, %zu DPD particles\n\n",
                restart_dir.c_str(), start_interval, ns.time(), sys.size());
  }

  for (int interval = start_interval; interval < intervals; ++interval) {
    cdc.advance_interval([&] {
      if (interval >= 12) sampler.accumulate(sys);
    });
    if (checkpoint_every > 0 && (interval + 1) % checkpoint_every == 0 &&
        interval + 1 < intervals) {
      const std::string dir = checkpoint_dir + "/step-" + std::to_string(interval + 1);
      const std::size_t bytes =
          coord.save(dir, static_cast<std::uint64_t>(interval + 1), ns.time());
      std::printf("checkpoint: %s (%zu bytes)\n", dir.c_str(), bytes);
    }
  }

  if (digest) {
    // CRC32 over the concatenated component states: two runs arriving at the
    // same interval must print the same digest (restart-equivalence check).
    resilience::BlobWriter w;
    ns.save_state(w);
    sys.save_state(w);
    bc.save_state(w);
    cdc.save_state(w);
    sampler.save_state(w);
    std::printf("STATE_DIGEST %08x\n", resilience::crc32(w.data()));
    return 0;
  }

  // --- 4. compare the profiles across the interface ---
  auto profile = sampler.snapshot();
  std::printf("%-8s %-14s %-14s\n", "y (NS)", "u continuum", "u DPD (scaled back)");
  for (std::size_t b = 0; b < profile.size(); ++b) {
    const double y = (static_cast<double>(b) + 0.5) / static_cast<double>(profile.size());
    const double u_ns = disc.evaluate(ns.u(), 2.0, y);
    const double u_dpd = scales.velocity_dpd_to_ns(profile[b]);
    std::printf("%-8.2f %-14.4f %-14.4f\n", y, u_ns, u_dpd);
  }
  std::printf("\nExchanges performed: %zu; DPD particles now: %zu "
              "(inserted %zu / deleted %zu by the flux BC)\n",
              cdc.exchanges(), sys.size(), bc.inserted_total(), bc.deleted_total());
  return 0;
}
