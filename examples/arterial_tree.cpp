// Example: the macrovascular network. A Circle-of-Willis-like 1D arterial
// network (NektarG's NEKTAR-1D component) driven by pulsatile carotid /
// vertebral inflow, plus a fractal mesovascular tree hanging off one
// efferent — the "telescoping" multiscale approach of Fig. 1, at the
// network level. Prints per-vessel pressure/flow waveforms over one
// cardiac cycle.
//
// Run: ./build/examples/arterial_tree

#include <cmath>
#include <cstdio>

#include "nektar1d/network.hpp"
#include "nektar1d/tree.hpp"

int main() {
  std::printf("Circle-of-Willis-like arterial network + fractal side tree\n\n");

  auto cow = nektar1d::cow_network();
  const double T = 0.9;  // cardiac period, s
  auto carotid_q = [T](double t) {
    return (4.0 + 2.0 * std::sin(2 * M_PI * t / T) + 0.8 * std::sin(4 * M_PI * t / T)) *
           std::min(1.0, t / 0.05);
  };
  auto vertebral_q = [T](double t) {
    return (1.5 + 0.7 * std::sin(2 * M_PI * t / T)) * std::min(1.0, t / 0.05);
  };
  cow.net.set_inlet_flow(cow.left_carotid, carotid_q);
  cow.net.set_inlet_flow(cow.right_carotid, carotid_q);
  cow.net.set_inlet_flow(cow.left_vertebral, vertebral_q);
  cow.net.set_inlet_flow(cow.right_vertebral, vertebral_q);

  std::printf("network: %zu vessels, %zu efferent outlets\n", cow.net.num_vessels(),
              cow.efferents.size());

  // mesovascular tree (separate network: the paper's MeN, fractal laws)
  nektar1d::FractalTreeParams ftp;
  ftp.generations = 4;
  auto tree = nektar1d::fractal_tree(ftp);
  tree.net.set_inlet_flow(tree.root,
                          [T](double t) { return (0.6 + 0.3 * std::sin(2 * M_PI * t / T)) *
                                                 std::min(1.0, t / 0.05); });
  std::printf("fractal tree: %zu vessels over %d generations, %zu terminal beds\n\n",
              tree.net.num_vessels(), ftp.generations, tree.leaves.size());

  // settle both networks through two cycles
  while (cow.net.time() < T) cow.net.step(cow.net.suggested_dt(0.3));
  while (tree.net.time() < T) tree.net.step(tree.net.suggested_dt(0.3));

  // record one cycle of waveforms
  std::printf("one cardiac cycle (t in s; Q in cm^3/s; p in mmHg):\n");
  std::printf("%-7s %-9s %-9s %-9s %-9s %-9s\n", "t", "Q_carot", "Q_basilar", "Q_mca",
              "p_carot", "p_tree_leaf");
  const double t0 = cow.net.time();
  const double mmHg = 1333.2;  // dyn/cm^2
  int next_sample = 0;
  while (cow.net.time() - t0 < T) {
    const double dt = cow.net.suggested_dt(0.3);
    cow.net.step(dt);
    tree.net.step(dt);
    const double tc = cow.net.time() - t0;
    if (tc >= next_sample * T / 8.0) {
      ++next_sample;
      std::printf("%-7.3f %-9.3f %-9.3f %-9.3f %-9.2f %-9.2f\n", tc,
                  cow.net.flow_at(cow.left_carotid, nektar1d::End::Left),
                  cow.net.flow_at(cow.basilar, nektar1d::End::Right),
                  cow.net.flow_at(cow.efferents[0], nektar1d::End::Right),
                  cow.net.pressure_at(cow.left_carotid, nektar1d::End::Right) / mmHg,
                  tree.net.pressure_at(tree.leaves[0], nektar1d::End::Right) / mmHg);
    }
  }

  // flow conservation audit over the ring
  double q_in = 0.0, q_out = 0.0;
  for (int v : {cow.left_carotid, cow.right_carotid, cow.left_vertebral, cow.right_vertebral})
    q_in += cow.net.flow_at(v, nektar1d::End::Left);
  for (int v : cow.efferents) q_out += cow.net.flow_at(v, nektar1d::End::Right);
  std::printf("\ninstantaneous inflow %.3f vs outflow %.3f cm^3/s "
              "(difference is stored in vessel compliance)\n",
              q_in, q_out);
  return 0;
}
