// Example: the paper's configuration in full 3D — a 3D spectral-element
// Navier-Stokes channel (plates at z = 0, H) with an embedded 3D DPD box,
// coupled through Eq. (1) and the Fig. 5 schedule with no dimension
// folding. Prints the continuum and atomistic velocity profiles across the
// gap, plus the wall-normal profile agreement.
//
// The whole run is described by a scenario (docs/SCENARIOS.md): with no
// --scenario flag the built-in coupled3d preset runs (identical to
// examples/scenarios/coupled3d.json).
//
// Run: ./build/examples/coupled3d
//
// Flags (see docs/RESILIENCE.md for checkpoint/restart):
//   --scenario FILE          run a scenario JSON file instead of the preset
//   --intervals N            coupling intervals to run (default 25)
//   --checkpoint-every K     save a checkpoint every K intervals
//   --checkpoint-dir DIR     where checkpoints go (default ./coupled3d-ckpt)
//   --restart DIR            resume from a checkpoint directory
//   --digest                 print a CRC32 digest of the final state
//                            (bitwise restart-equivalence checks)

#include <cstdio>
#include <string>

#include "scenario/flags.hpp"
#include "scenario/presets.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  int intervals = -1;
  int checkpoint_every = -1;
  std::string checkpoint_dir;
  std::string restart_dir;
  std::string scenario_file;
  bool digest = false;
  scenario::Flags flags("coupled3d");
  flags.add_string("--scenario", &scenario_file, "scenario JSON file (default: built-in preset)");
  flags.add_int("--intervals", &intervals, "coupling intervals to run");
  flags.add_int("--checkpoint-every", &checkpoint_every, "save a checkpoint every K intervals");
  flags.add_string("--checkpoint-dir", &checkpoint_dir, "where checkpoints go");
  flags.add_string("--restart", &restart_dir, "resume from a checkpoint directory");
  flags.add_flag("--digest", &digest, "print a CRC32 digest of the final state");
  if (!flags.parse(argc, argv)) return 2;

  std::printf("Fully 3D coupled simulation: SEM hexahedra + DPD box\n\n");

  scenario::Scenario sc;
  try {
    sc = scenario_file.empty() ? scenario::coupled3d_preset()
                               : scenario::load_scenario_file(scenario_file);
  } catch (const scenario::JsonError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  scenario::RunnerOptions opts;
  opts.restart_dir = restart_dir;
  opts.intervals = intervals;
  opts.checkpoint_every = checkpoint_every;
  opts.checkpoint_dir = checkpoint_dir;
  opts.verbose = true;

  scenario::Runner runner(sc, opts);
  scenario::RunResult res;
  try {
    res = runner.run();
  } catch (const resilience::SnapshotError& e) {
    std::fprintf(stderr, "restart failed: %s\n", e.what());
    return 1;
  }

  if (digest) {
    std::printf("STATE_DIGEST %08x\n", res.digest);
    return 0;
  }

  auto profile = runner.sampler().snapshot();
  std::printf("%-8s %-14s %-16s\n", "z (NS)", "u continuum", "u DPD (scaled back)");
  for (std::size_t b = 0; b < profile.size(); ++b) {
    const double z = (static_cast<double>(b) + 0.5) / static_cast<double>(profile.size());
    std::printf("%-8.2f %-14.4f %-16.4f\n", z, runner.eval_u(2.0, 0.5, z),
                runner.scales().velocity_dpd_to_ns(profile[b]));
  }
  std::printf("\n%zu exchanges; all three velocity components coupled (v, w ~ 0)\n",
              runner.exchanges());
  return 0;
}
