// Example: the paper's configuration in full 3D — a 3D spectral-element
// Navier-Stokes channel (plates at z = 0, H) with an embedded 3D DPD box,
// coupled through Eq. (1) and the Fig. 5 schedule with no dimension
// folding. Prints the continuum and atomistic velocity profiles across the
// gap, plus the wall-normal profile agreement.
//
// Run: ./build/examples/coupled3d
//
// Checkpoint/restart (see docs/RESILIENCE.md):
//   --intervals N            coupling intervals to run (default 25)
//   --checkpoint-every K     save a checkpoint every K intervals
//   --checkpoint-dir DIR     where checkpoints go (default ./coupled3d-ckpt)
//   --restart DIR            resume from a checkpoint directory
//   --digest                 print a CRC32 digest of the final state
//                            (bitwise restart-equivalence checks)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coupling/cdc3d.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/snapshot.hpp"
#include "sem/ns3d.hpp"

int main(int argc, char** argv) {
  int intervals = 25;
  int checkpoint_every = 0;
  std::string checkpoint_dir = "coupled3d-ckpt";
  std::string restart_dir;
  bool digest = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--intervals") && i + 1 < argc)
      intervals = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--checkpoint-every") && i + 1 < argc)
      checkpoint_every = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--checkpoint-dir") && i + 1 < argc)
      checkpoint_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--restart") && i + 1 < argc)
      restart_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--digest"))
      digest = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }
  const bool restarting = !restart_dir.empty();

  std::printf("Fully 3D coupled simulation: SEM hexahedra + DPD box\n\n");

  const double H = 1.0, Umax = 1.0, nu = 0.05;
  sem::Discretization3D d(4.0, 1.0, H, 4, 1, 2, 4);
  sem::NavierStokes3D::Params prm;
  prm.nu = nu;
  prm.dt = 2e-3;
  prm.time_order = 2;
  prm.pressure_dirichlet_faces = {sem::HexFace::X1};
  sem::NavierStokes3D ns(d, prm);
  auto prof = [&](double, double, double z, double) {
    return 4.0 * Umax * z * (H - z) / (H * H);
  };
  auto zero = [](double, double, double, double) { return 0.0; };
  ns.set_velocity_bc(sem::HexFace::X0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y0, prof, zero, zero);
  ns.set_velocity_bc(sem::HexFace::Y1, prof, zero, zero);
  ns.set_natural_bc(sem::HexFace::X1);
  if (!restarting) {
    std::printf("continuum: %zu hexahedral SEM nodes, developing...\n", d.num_nodes());
    for (int s = 0; s < 300; ++s) ns.step();
  }

  dpd::DpdParams dp;
  dp.box = {16.0, 6.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelZ>(10.0));
  if (!restarting) {
    sys.fill(3.0, dpd::kSolvent, 7, 0.1);
    std::printf("atomistic: %zu DPD particles\n\n", sys.size());
  }
  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = H;
  scales.L_dpd = 10.0;
  scales.nu_ns = nu;
  scales.nu_dpd = 2.5;
  coupling::TimeProgression tp;
  tp.dt_ns = prm.dt;
  tp.exchange_every_ns = 2;
  tp.dpd_per_ns = 10;
  coupling::EmbeddedBox box{1.5, 2.5, 0.25, 0.75, 0.0, 1.0};
  coupling::ContinuumDpdCoupler3D cdc(ns, sys, bc, box, scales, tp);

  dpd::SamplerParams sp;
  sp.nx = 1;
  sp.ny = 1;
  sp.nz = 10;
  dpd::FieldSampler sampler(sys, sp);

  resilience::CheckpointCoordinator coord;
  coord.add("ns3d", ns);
  coord.add("dpd", sys);
  coord.add("flowbc", bc);
  coord.add("cdc3d", cdc);
  coord.add("sampler", sampler);

  int start_interval = 0;
  if (restarting) {
    try {
      const auto info = coord.load(restart_dir);
      start_interval = static_cast<int>(info.step);
    } catch (const resilience::SnapshotError& e) {
      std::fprintf(stderr, "restart failed: %s\n", e.what());
      return 1;
    }
    std::printf("restarted from %s: interval %d, t_ns = %.4f, %zu DPD particles\n\n",
                restart_dir.c_str(), start_interval, ns.time(), sys.size());
  }

  for (int interval = start_interval; interval < intervals; ++interval) {
    cdc.advance_interval([&] {
      if (interval >= 15) sampler.accumulate(sys);
    });
    if (checkpoint_every > 0 && (interval + 1) % checkpoint_every == 0 &&
        interval + 1 < intervals) {
      const std::string dir = checkpoint_dir + "/step-" + std::to_string(interval + 1);
      const std::size_t bytes =
          coord.save(dir, static_cast<std::uint64_t>(interval + 1), ns.time());
      std::printf("checkpoint: %s (%zu bytes)\n", dir.c_str(), bytes);
    }
  }

  if (digest) {
    resilience::BlobWriter w;
    ns.save_state(w);
    sys.save_state(w);
    bc.save_state(w);
    cdc.save_state(w);
    sampler.save_state(w);
    std::printf("STATE_DIGEST %08x\n", resilience::crc32(w.data()));
    return 0;
  }

  auto profile = sampler.snapshot();
  std::printf("%-8s %-14s %-16s\n", "z (NS)", "u continuum", "u DPD (scaled back)");
  for (std::size_t b = 0; b < profile.size(); ++b) {
    const double z = (static_cast<double>(b) + 0.5) / static_cast<double>(profile.size());
    std::printf("%-8.2f %-14.4f %-16.4f\n", z, d.evaluate(ns.u(), 2.0, 0.5, z),
                scales.velocity_dpd_to_ns(profile[b]));
  }
  std::printf("\n%zu exchanges; all three velocity components coupled (v, w ~ 0)\n",
              cdc.exchanges());
  return 0;
}
