// Example: WPOD co-processing of an unsteady DPD simulation (Sec. 3.4).
// Runs an oscillating channel flow, feeds windowed snapshots to the WPOD
// analyzer, and prints the eigenspectrum, the adaptive mean/fluctuation
// split, and the reconstructed time-resolved centerline velocity — the
// workflow a user would attach to a production atomistic run.
//
// Run: ./build/examples/wpod_analysis

#include <cstdio>
#include <vector>

#include "dpd/geometry.hpp"
#include "dpd/sampling.hpp"
#include "dpd/system.hpp"
#include "la/stats.hpp"
#include "wpod/wpod.hpp"

int main() {
  std::printf("WPOD co-processing demo: oscillating DPD channel flow\n\n");

  dpd::DpdParams prm;
  prm.box = {12.0, 6.0, 8.0};
  prm.periodic = {true, true, false};
  prm.dt = 0.01;
  dpd::DpdSystem sys(prm, std::make_shared<dpd::ChannelZ>(8.0));
  sys.fill(3.0, dpd::kSolvent, 3, 0.1);
  sys.set_body_force([&sys](const dpd::Vec3&, dpd::Species) {
    return dpd::Vec3{0.1 * std::sin(0.35 * sys.time()), 0.0, 0.0};
  });
  for (int s = 0; s < 400; ++s) sys.step();

  dpd::SamplerParams sp;
  sp.nx = 6;
  sp.ny = 1;
  sp.nz = 16;
  dpd::FieldSampler sampler(sys, sp);

  const int kWindows = 64, kNts = 40;
  std::vector<la::Vector> snaps;
  for (int w = 0; w < kWindows; ++w) {
    for (int s = 0; s < kNts; ++s) {
      sys.step();
      sampler.accumulate(sys);
    }
    snaps.push_back(sampler.snapshot());
  }
  std::printf("collected %d windows of %d steps over %zu bins\n\n", kWindows, kNts,
              snaps[0].size());

  auto wp = wpod::analyze(snaps);
  std::printf("eigenspectrum (first 10 of %zu):\n  ", wp.eigenvalues.size());
  for (int k = 0; k < 10; ++k) std::printf("%.3g  ", wp.eigenvalues[static_cast<std::size_t>(k)]);
  std::printf("\n  noise floor %.3g -> adaptive split keeps %zu mean mode(s)\n\n",
              wp.noise_floor, wp.k_mean);

  // time-resolved centerline velocity: raw window average vs WPOD mean
  std::printf("%-8s %-16s %-16s\n", "window", "raw centerline u", "WPOD centerline u");
  const std::size_t center_bin = (8 / 2) * 6 + 3;  // z middle, x middle-ish
  for (int w = 0; w < kWindows; w += 8) {
    const auto mean = wp.mean_at(static_cast<std::size_t>(w));
    std::printf("%-8d %-16.4f %-16.4f\n", w, snaps[static_cast<std::size_t>(w)][center_bin],
                mean[center_bin]);
  }

  // fluctuation statistics
  std::vector<double> fl;
  for (std::size_t t = 0; t < snaps.size(); ++t) {
    auto f = wp.fluctuation_at(t, snaps[t]);
    fl.insert(fl.end(), f.begin(), f.end());
  }
  auto mom = la::stats::moments(fl);
  std::printf("\nbin-level fluctuations: sigma = %.4f, skew = %.2f, kurtosis-3 = %.2f\n",
              mom.stddev, mom.skewness, mom.kurtosis_excess);
  std::printf("(the WPOD column is smooth while staying time-resolved; the raw column\n"
              " carries the per-window sampling noise)\n");
  return 0;
}
