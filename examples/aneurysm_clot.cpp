// Example: the paper's headline scenario at laptop scale — blood flow over
// an aneurysm-like cavity with platelet-driven thrombus formation.
//
// The continuum patch is a channel with a side cavity (the sac); the DPD
// domain covers the sac and the channel segment beneath it; platelets that
// dwell near the damaged sac wall trigger, activate after a delay, arrest,
// and aggregate into a growing clot (Sec. 2 + Fig. 10 physics).
//
// Run: ./build/examples/aneurysm_clot

#include <cstdio>

#include "coupling/cdc.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "mesh/quadmesh.hpp"
#include "sem/ns2d.hpp"
#include "sem/operators.hpp"

int main() {
  std::printf("Aneurysm clotting demo: coupled continuum-atomistic simulation\n\n");

  // continuum: channel with an aneurysm-like cavity on the upper wall
  auto m = mesh::QuadMesh::channel_with_cavity(/*L=*/8.0, /*H=*/1.0, /*cav_x0=*/3.0,
                                               /*cav_x1=*/5.0, /*cav_depth=*/1.0,
                                               /*nx=*/16, /*ny=*/2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.02;
  nsp.dt = 2e-3;
  sem::NavierStokes2D ns(d, nsp);
  const double T = 0.8;  // pulse period (NS time units)
  ns.set_velocity_bc(mesh::kInlet,
                     [T](double, double y, double t) {
                       return 4.0 * y * (1.0 - y) * (1.0 + 0.3 * std::sin(2 * M_PI * t / T));
                     },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  std::printf("continuum: channel+cavity, %zu SEM nodes; developing flow...\n",
              d.num_nodes());
  for (int s = 0; s < 200; ++s) ns.step();
  // flow inside the sac is slow compared to the channel: the clot condition
  std::printf("  channel centerline u = %.3f, sac u = %.3f (stagnant: clotting risk)\n\n",
              d.evaluate(ns.u(), 4.0, 0.5), d.evaluate(ns.u(), 4.0, 1.5));

  // atomistic: DPD domain covering the sac region
  dpd::DpdParams dp;
  dp.box = {20.0, 5.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelWithCavityZ>(5.0, 6.0, 14.0, 5.0));
  sys.fill(3.0, dpd::kSolvent, 41, 0.1);

  dpd::PlateletParams pp;
  pp.adhesive_region = [](const dpd::Vec3& p) { return p.z > 5.0; };  // sac walls
  pp.activation_delay = 2.0;
  pp.bind_distance = 0.8;
  pp.bind_speed = 1.2;
  auto platelets = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(platelets);
  platelets->seed_platelets(sys, 50, 5);
  std::printf("atomistic: %zu particles incl. %zu platelets\n\n", sys.size(),
              platelets->total());

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  fp.relax = 0.3;
  dpd::FlowBc bc(fp);

  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 5.0;
  scales.nu_ns = nsp.nu;
  scales.nu_dpd = 0.4;
  coupling::TimeProgression tp;
  tp.dt_ns = nsp.dt;
  tp.exchange_every_ns = 5;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {2.0, 6.0, 0.0, 2.0}, scales, tp);

  std::printf("%-10s %-8s %-7s | clot profile along the sac wall\n", "DPD time", "active",
              "bound");
  for (int block = 0; block < 6; ++block) {
    for (int k = 0; k < 5; ++k) cdc.advance_interval([&] { platelets->update(sys); });
    // crude rendering: bound platelets per x-slab of the sac
    int slab[10] = {};
    for (std::size_t i = 0; i < platelets->total(); ++i) {
      if (platelets->state_of(i) != dpd::PlateletState::Bound) continue;
      const long li = sys.local_of(platelets->particles()[i]);
      if (li < 0) continue;
      const auto& p = sys.positions()[static_cast<std::size_t>(li)];
      const int sbin = std::clamp(static_cast<int>(p.x / 2.0), 0, 9);
      slab[sbin]++;
    }
    std::printf("%-10.1f %-8zu %-7zu | ", sys.time(),
                platelets->count(dpd::PlateletState::Active),
                platelets->count(dpd::PlateletState::Bound));
    for (int sbin = 0; sbin < 10; ++sbin)
      std::printf("%c", slab[sbin] == 0 ? '.' : slab[sbin] < 3 ? '+' : '#');
    std::printf("\n");
  }
  std::printf("\n('#' slabs mark the thrombus; it nucleates inside the sac (x ~ 6-14)\n"
              " where the adhesive wall and the stagnant flow coincide)\n");

  // wall shear stress along the walls (the paper: mean WSS is "a very
  // important quantity in biological flows"); the sac walls should carry far
  // lower WSS than the channel walls — the clotting-risk signature
  sem::Operators ops(d);
  auto tau = ops.wall_shear_stress(ns.u(), ns.v(), nsp.nu, mesh::kWall);
  const auto& wall_nodes = d.boundary_nodes(mesh::kWall);
  double wss_channel = 0.0, wss_sac = 0.0;
  std::size_t nc = 0, nsac = 0;
  for (std::size_t k = 0; k < wall_nodes.size(); ++k) {
    const double y = d.node_y(wall_nodes[k]);
    if (y == 0.0) {
      wss_channel += std::fabs(tau[k]);
      ++nc;
    } else if (y > 1.5) {
      wss_sac += std::fabs(tau[k]);
      ++nsac;
    }
  }
  std::printf("\nmean |WSS|: channel floor %.4f vs aneurysm dome %.4f (ratio %.1fx)\n",
              wss_channel / nc, wss_sac / nsac, (wss_channel / nc) / (wss_sac / nsac + 1e-12));
  return 0;
}
