// Distributed DPD demo and the scale-smoke equivalence check: the same
// quickstart-scale channel is stepped once on a single rank and once
// decomposed over N xmp ranks (src/dpd/exchange/), and the two trajectory
// digests are compared. Under HaloMode::Symmetric they must be *bitwise*
// equal — any divergence is an exchange bug, and the binary exits non-zero
// so CI catches it. Runs under both XMP_SCHED modes (CI pins fibers).
//
// Build & run:  cmake --build build && ./build/examples/dpd_decomposed
//
// Flags:
//   --ranks N   decomposed rank count (default 4)
//   --steps N   DPD steps (default 50)
//   --overlap   overlap the halo refresh with interior pair computation
//               (DistOptions::overlap); the digest gate is unchanged —
//               the overlapped path is bitwise trajectory-neutral

#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>

#include "dpd/exchange/distributed.hpp"
#include "dpd/system.hpp"
#include "xmp/comm.hpp"

namespace {

std::shared_ptr<dpd::DpdSystem> make_system() {
  dpd::DpdParams prm;
  prm.box = {16.0, 8.0, 8.0};
  prm.periodic = {true, true, false};
  auto sys = std::make_shared<dpd::DpdSystem>(prm, std::make_shared<dpd::ChannelZ>(prm.box.z));
  sys->fill(3.0, dpd::kSolvent, 42);
  sys->set_body_force([](const dpd::Vec3&, dpd::Species) { return dpd::Vec3{0.05, 0.0, 0.0}; });
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 4;
  int steps = 50;
  bool overlap = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--ranks") && i + 1 < argc) ranks = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--steps") && i + 1 < argc) steps = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--overlap")) overlap = true;
  }

  auto single = make_system();
  std::printf("dpd_decomposed: n=%zu steps=%d ranks=%d overlap=%s\n", single->size(), steps,
              ranks, overlap ? "on" : "off");
  for (int s = 0; s < steps; ++s) single->step();
  const std::uint64_t ref = dpd::exchange::trajectory_digest(*single);
  std::printf("single-rank digest:  %016llx\n", static_cast<unsigned long long>(ref));

  std::uint64_t dist = 0;
  xmp::run(ranks, [&](xmp::Comm& world) {
    auto sys = make_system();
    dpd::exchange::DistOptions opt;
    opt.overlap = overlap;
    dpd::exchange::DistributedDpd drv(world, *sys, opt);
    drv.distribute();
    for (int s = 0; s < steps; ++s) sys->step();
    const std::uint64_t d = drv.global_digest();
    if (world.rank() == 0) {
      dist = d;
      const auto dims = drv.decomposition().dims();
      std::printf("%d-rank digest (%dx%dx%d grid): %016llx\n", ranks, dims.px, dims.py,
                  dims.pz, static_cast<unsigned long long>(d));
    }
  });

  if (dist != ref) {
    std::fprintf(stderr, "FAIL: decomposed trajectory diverged from the single-rank run\n");
    return 1;
  }
  std::printf("OK: %d-rank run is bitwise equal to the single-rank run\n", ranks);
  return 0;
}
