// Example: multiscale visualization (the paper's fourth key contribution).
// Runs a short coupled simulation covering all three descriptions and dumps
// a ParaView-ready set of legacy-VTK files:
//   out/macro_network.vtk  — 1D Circle-of-Willis-like network (A, U, p)
//   out/patch_fields.vtk   — SEM channel+aneurysm fields (u, v, p)
//   out/particles.vtk      — DPD particles with species + platelet states
//
// Run: ./build/examples/multiscale_viz [output_dir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "coupling/cdc.hpp"
#include "dpd/geometry.hpp"
#include "dpd/inflow.hpp"
#include "dpd/platelets.hpp"
#include "dpd/system.hpp"
#include "io/vtk.hpp"
#include "mesh/quadmesh.hpp"
#include "nektar1d/tree.hpp"
#include "sem/ns2d.hpp"

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out);

  // --- 1D network (MaN skeleton) ---
  auto cow = nektar1d::cow_network();
  auto q = [](double t) { return (4.0 + 2.0 * std::sin(7.0 * t)) * std::min(1.0, t / 0.05); };
  auto qv = [](double t) { return (1.5 + 0.7 * std::sin(7.0 * t)) * std::min(1.0, t / 0.05); };
  cow.net.set_inlet_flow(cow.left_carotid, q);
  cow.net.set_inlet_flow(cow.right_carotid, q);
  cow.net.set_inlet_flow(cow.left_vertebral, qv);
  cow.net.set_inlet_flow(cow.right_vertebral, qv);
  while (cow.net.time() < 0.3) cow.net.step(cow.net.suggested_dt(0.3));

  // --- continuum patch with aneurysm (resolved MaN segment) ---
  auto m = mesh::QuadMesh::channel_with_cavity(8.0, 1.0, 3.0, 5.0, 1.0, 16, 2);
  sem::Discretization d(m, 4);
  sem::NavierStokes2D::Params nsp;
  nsp.nu = 0.02;
  nsp.dt = 2e-3;
  nsp.time_order = 2;
  sem::NavierStokes2D ns(d, nsp);
  ns.set_velocity_bc(mesh::kInlet,
                     [](double, double y, double) { return 4.0 * y * (1.0 - y); },
                     [](double, double, double) { return 0.0; });
  ns.set_natural_bc(mesh::kOutlet);
  for (int s = 0; s < 150; ++s) ns.step();

  // --- DPD subdomain in the sac (MeN/MiN) with platelets ---
  dpd::DpdParams dp;
  dp.box = {20.0, 5.0, 10.0};
  dp.periodic = {false, true, false};
  dp.dt = 0.01;
  dpd::DpdSystem sys(dp, std::make_shared<dpd::ChannelWithCavityZ>(5.0, 6.0, 14.0, 5.0));
  sys.fill(3.0, dpd::kSolvent, 41, 0.1);
  dpd::PlateletParams pp;
  pp.adhesive_region = [](const dpd::Vec3& p) { return p.z > 5.0; };
  pp.activation_delay = 1.0;
  pp.bind_speed = 1.2;
  auto platelets = std::make_shared<dpd::PlateletModel>(pp);
  sys.add_module(platelets);
  platelets->seed_platelets(sys, 40, 5);

  dpd::FlowBcParams fp;
  fp.axis = 0;
  fp.buffer_len = 2.0;
  fp.density = 3.0;
  dpd::FlowBc bc(fp);
  coupling::ScaleMap scales;
  scales.L_ns = 1.0;
  scales.L_dpd = 5.0;
  scales.nu_ns = nsp.nu;
  scales.nu_dpd = 0.4;
  coupling::TimeProgression tp;
  tp.dt_ns = nsp.dt;
  tp.exchange_every_ns = 5;
  tp.dpd_per_ns = 10;
  coupling::ContinuumDpdCoupler cdc(ns, sys, bc, {2.0, 6.0, 0.0, 2.0}, scales, tp);
  for (int k = 0; k < 10; ++k) cdc.advance_interval([&] { platelets->update(sys); });

  // --- dump all three scales ---
  io::write_network_vtk(out + "/macro_network.vtk", cow.net);
  const la::Vector &u = ns.u(), &v = ns.v(), &p = ns.p();
  io::write_sem_vtk(out + "/patch_fields.vtk", d, {{"u", &u}, {"v", &v}, {"p", &p}});
  io::write_dpd_vtk(out + "/particles.vtk", sys, platelets.get());

  std::printf("wrote %s/macro_network.vtk (%zu vessels)\n", out.c_str(),
              cow.net.num_vessels());
  std::printf("wrote %s/patch_fields.vtk (%zu nodes, u/v/p)\n", out.c_str(), d.num_nodes());
  std::printf("wrote %s/particles.vtk (%zu particles, %zu bound platelets)\n", out.c_str(),
              sys.size(), platelets->count(dpd::PlateletState::Bound));
  std::printf("\nopen all three in one ParaView session for the Fig. 1 telescoping view\n");
  return 0;
}
